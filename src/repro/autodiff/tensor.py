"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the lowest layer of the reproduction: everything the paper
runs in PyTorch (TS3Net, the baselines, Adam) runs here on a from-scratch
``Tensor`` that records a computation graph and back-propagates through it.

The tape is an explicit op-graph IR (see :mod:`repro.autodiff.graph`):

* every differentiable operation is a *registered op* — a named
  forward/backward pair in the op registry — and applying one records an
  :class:`~repro.autodiff.graph.OpNode` (op name, parents, saved tensors)
  on the output;
* :meth:`Tensor.backward` topologically sorts the node graph and runs each
  node's registered backward in reverse order, accumulating gradients
  **in place** into per-tensor buffers (``np.add(..., out=...)`` after the
  first owned allocation);
* saved activations are **freed as soon as their node's backward has run**
  unless ``retain_graph=True`` is passed, so peak retained memory decays
  over the course of the backward pass;
* broadcasting is handled by summing gradients over broadcast axes
  (:func:`unbroadcast`).

Only ``float`` dtypes participate in differentiation.  Integer tensors are
allowed as indices/masks but never receive gradients.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple, Union

import numpy as np

from .graph import (
    OpContext, OpNode, _backward_hooks, _clock, _forward_hooks, get_op,
    register_op,
)

ArrayLike = Union[np.ndarray, float, int, list, tuple]

DEFAULT_DTYPE = np.float64


class _EngineState(threading.local):
    """Per-thread autodiff mode flags (grad recording, default float dtype).

    The class attributes are the boot defaults every fresh thread starts
    from; assigning an attribute creates a thread-local override.  This is
    what makes ``no_grad()`` / ``precision()`` safe under concurrency: a
    serving worker thread entering ``no_grad`` can never flip grad mode for
    a training loop running on another thread.  Main-thread semantics are
    unchanged.  Note that a newly spawned thread starts from the boot
    defaults (grad on, ``DEFAULT_DTYPE``), not from the spawning thread's
    current overrides.
    """

    grad_enabled = True
    default_dtype = DEFAULT_DTYPE
    # Optional graph-capture sink installed by the compiler
    # (repro.autodiff.compile): called once per apply() with the op name,
    # parents, kwargs, output tensor, and OpNode (or None).  Thread-local,
    # so a capture on one thread never observes another thread's tape.
    capture = None


_state = _EngineState()

_PRECISIONS = {
    "float32": np.float32,
    "float64": np.float64,
    "f32": np.float32,
    "f64": np.float64,
    "single": np.float32,
    "double": np.float64,
}


def resolve_dtype(precision_or_dtype) -> np.dtype:
    """Map ``'float32'``/``'float64'`` (or a dtype) to a NumPy float dtype."""
    if isinstance(precision_or_dtype, str):
        try:
            return np.dtype(_PRECISIONS[precision_or_dtype])
        except KeyError:
            raise ValueError(
                f"unknown precision {precision_or_dtype!r}; choose from "
                f"{sorted(set(_PRECISIONS))}") from None
    dtype = np.dtype(precision_or_dtype)
    if not np.issubdtype(dtype, np.floating):
        raise ValueError(f"precision dtype must be floating, got {dtype}")
    return dtype


def set_default_dtype(precision_or_dtype) -> None:
    """Set the float dtype new tensors are created with (thread-local)."""
    _state.default_dtype = resolve_dtype(precision_or_dtype).type


def get_default_dtype() -> np.dtype:
    """The float dtype that :class:`Tensor` construction coerces to."""
    return np.dtype(_state.default_dtype)


class precision:
    """Context manager scoping the engine's default float dtype.

    ``with precision('float32'): ...`` makes every tensor built inside the
    block single precision; the previous default is restored on exit.  The
    boot default is ``float64`` (``DEFAULT_DTYPE``) so seed results are
    unchanged unless a caller opts in.
    """

    def __init__(self, precision_or_dtype):
        self._dtype = resolve_dtype(precision_or_dtype).type

    def __enter__(self):
        self._prev = _state.default_dtype
        _state.default_dtype = self._dtype
        return self

    def __exit__(self, *exc):
        _state.default_dtype = self._prev
        return False


class no_grad:
    """Context manager disabling graph construction (like ``torch.no_grad``).

    The flag is thread-local: entering ``no_grad`` on one thread does not
    affect graph recording on any other thread.
    """

    def __enter__(self):
        self._prev = _state.grad_enabled
        _state.grad_enabled = False
        return self

    def __exit__(self, *exc):
        _state.grad_enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether this thread records new operations on the tape."""
    return _state.grad_enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    If a forward op broadcast an operand of ``shape`` up to ``grad.shape``,
    the operand's gradient is the sum of ``grad`` over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a NumPy array of the engine's default dtype."""
    arr = np.asarray(value)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if np.issubdtype(arr.dtype, np.floating):
        return arr.astype(_state.default_dtype, copy=False)
    return arr


class Tensor:
    """A NumPy array plus the bookkeeping needed for backpropagation.

    Parameters
    ----------
    data:
        The wrapped array (or anything ``np.asarray`` accepts).
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_node", "name")

    __array_priority__ = 100  # make NumPy defer to our reflected operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        self.data = as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._node: Optional[OpNode] = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Gradient plumbing
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded op graph.

        Unless ``retain_graph=True``, every node's saved activations are
        released as soon as its backward has run, and a second backward
        through the same graph raises.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order = _topo_order(self)

        # Pending gradient buffers, keyed by tensor id.  ``owned`` marks
        # buffers this walk allocated itself: those accumulate in place
        # (np.add(..., out=...)); first contributions are stored zero-copy
        # and are never mutated, since they may alias an upstream buffer.
        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = set()
        for i in range(len(order) - 1, -1, -1):
            tensor_ = order[i]
            order[i] = None  # type: ignore[call-overload]  # release for GC
            key = id(tensor_)
            node_grad = grads.pop(key, None)
            owned.discard(key)
            if node_grad is None:
                continue
            node = tensor_._node
            if node is None:
                tensor_._accumulate(node_grad)
                continue
            _run_node_backward(node, node_grad, grads, owned, retain_graph)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(as_array(other, dtype=self.data.dtype))

    def __add__(self, other):
        return apply("add", self, self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other):
        return apply("sub", self, self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __mul__(self, other):
        return apply("mul", self, self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return apply("div", self, self._coerce(other))

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __neg__(self):
        return apply("neg", self)

    def __pow__(self, exponent: float):
        return apply("pow", self, exponent=float(exponent))

    def __matmul__(self, other):
        return apply("matmul", self, self._coerce(other))

    # Comparisons produce detached boolean arrays.
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply("reshape", self, shape=shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        return apply("transpose", self, axes=axes)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, idx) -> "Tensor":
        return apply("getitem", self, idx=idx)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        return apply("squeeze", self, axis=axis)

    def unsqueeze(self, axis: int) -> "Tensor":
        return apply("unsqueeze", self, axis=axis)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply("sum", self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply("mean", self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        out = (diff * diff).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply("max", self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return apply("exp", self)

    def log(self) -> "Tensor":
        return apply("log", self)

    def sqrt(self) -> "Tensor":
        return apply("sqrt", self)

    def abs(self) -> "Tensor":
        return apply("abs", self)

    def tanh(self) -> "Tensor":
        return apply("tanh", self)

    def sin(self) -> "Tensor":
        return apply("sin", self)

    def cos(self) -> "Tensor":
        return apply("cos", self)

    def clip(self, lo: Optional[float] = None, hi: Optional[float] = None) -> "Tensor":
        return apply("clip", self, lo=lo, hi=hi)


# ---------------------------------------------------------------------------
# The single door into the tape
# ---------------------------------------------------------------------------

def _topo_order(root: "Tensor") -> list:
    """Iterative DFS topological order of ``root``'s recorded graph.

    Shared by ``Tensor.backward`` and the graph compiler's capture pass so
    the compiled backward program replays nodes in exactly the order the
    eager walk would process them (reverse of this list).
    """
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        tensor_, processed = stack.pop()
        if processed:
            order.append(tensor_)
            continue
        if id(tensor_) in visited:
            continue
        visited.add(id(tensor_))
        stack.append((tensor_, True))
        node = tensor_._node
        if node is not None:
            if node.freed:
                raise RuntimeError(
                    f"backward through {node.op!r} a second time, but its "
                    "saved activations were already freed; pass "
                    "retain_graph=True to the first backward")
            for parent in node.parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
    return order


def apply(name: str, *parents: Tensor, **kwargs) -> Tensor:
    """Run registered op ``name`` on ``parents``, recording an OpNode.

    This is the only constructor of graph edges: every differentiable op —
    tensor methods, :mod:`repro.autodiff.ops` functionals, and the spectral
    ops — routes through here, which is what makes per-op hooks and the
    registry-driven gradient-check sweep exhaustive by construction.
    """
    spec = get_op(name)
    ctx = OpContext()
    if _forward_hooks:
        t0 = _clock()
        out_data = spec.forward(ctx, *parents, **kwargs)
        elapsed = _clock() - t0
    else:
        out_data = spec.forward(ctx, *parents, **kwargs)
    requires = _state.grad_enabled and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires)
    node = None
    if requires:
        node = OpNode(name, parents, ctx.saved)
        out._node = node
    if _state.capture is not None:
        _state.capture(name, parents, kwargs, out, node)
    if _forward_hooks:
        nbytes = node.saved_bytes if node is not None else 0
        for hook in tuple(_forward_hooks.values()):
            hook(name, elapsed, nbytes)
    return out


def _run_node_backward(node: OpNode, grad: np.ndarray,
                       grads: dict, owned: set, retain_graph: bool) -> None:
    """Run one node's registered backward, staging gradients per parent."""
    parents = node.parents

    def sink(index: int, g: np.ndarray) -> None:
        parent = parents[index]
        if not parent.requires_grad:
            return
        g = unbroadcast(np.asarray(g, dtype=parent.data.dtype), parent.data.shape)
        if parent._node is None:
            parent._accumulate(g)
            return
        key = id(parent)
        buf = grads.get(key)
        if buf is None:
            grads[key] = g
        elif key in owned:
            np.add(buf, g, out=buf)
        else:
            grads[key] = buf + g
            owned.add(key)

    spec = get_op(node.op)
    # Dead-gradient elimination: tell the op which parent gradients are
    # actually wanted so it can skip computing the rest (the sink above
    # would only discard them).
    node.needs = tuple(p.requires_grad for p in parents)
    if _backward_hooks:
        t0 = _clock()
        spec.backward(node, grad, sink)
        elapsed = _clock() - t0
        freed = 0 if retain_graph else node.free()
        for hook in tuple(_backward_hooks.values()):
            hook(node.op, elapsed, freed)
    else:
        spec.backward(node, grad, sink)
        if not retain_graph:
            node.free()


# ---------------------------------------------------------------------------
# Registered ops: arithmetic
# ---------------------------------------------------------------------------

def _pair_sample(rng):
    a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    return a, b


@register_op("add")
class _Add:
    @staticmethod
    def forward(ctx, a, b):
        return a.data + b.data

    @staticmethod
    def backward(node, grad, sink):
        sink(0, grad)
        sink(1, grad)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4,)), requires_grad=True)
        return (lambda a, b: a + b), [a, b]


@register_op("sub")
class _Sub:
    @staticmethod
    def forward(ctx, a, b):
        return a.data - b.data

    @staticmethod
    def backward(node, grad, sink):
        needs = node.needs
        if needs is None or needs[0]:
            sink(0, grad)
        if needs is None or needs[1]:
            sink(1, -grad)

    @staticmethod
    def sample(rng):
        a, b = _pair_sample(rng)
        return (lambda a, b: a - b), [a, b]


@register_op("mul")
class _Mul:
    @staticmethod
    def forward(ctx, a, b):
        ctx.save(a.data, b.data)
        return a.data * b.data

    @staticmethod
    def backward(node, grad, sink):
        a, b = node.saved
        needs = node.needs
        if needs is None or needs[0]:
            sink(0, grad * b)
        if needs is None or needs[1]:
            sink(1, grad * a)

    @staticmethod
    def sample(rng):
        a, b = _pair_sample(rng)
        return (lambda a, b: a * b), [a, b]


@register_op("div")
class _Div:
    @staticmethod
    def forward(ctx, a, b):
        ctx.save(a.data, b.data)
        return a.data / b.data

    @staticmethod
    def backward(node, grad, sink):
        a, b = node.saved
        needs = node.needs
        if needs is None or needs[0]:
            sink(0, grad / b)
        if needs is None or needs[1]:
            sink(1, -grad * a / (b ** 2))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)) + 3.0, requires_grad=True)
        return (lambda a, b: a / b), [a, b]


@register_op("neg")
class _Neg:
    @staticmethod
    def forward(ctx, a):
        return -a.data

    @staticmethod
    def backward(node, grad, sink):
        sink(0, -grad)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: -a), [a]


@register_op("pow")
class _Pow:
    @staticmethod
    def forward(ctx, a, *, exponent):
        ctx.save(a.data, exponent)
        return a.data ** exponent

    @staticmethod
    def backward(node, grad, sink):
        a, exponent = node.saved
        sink(0, grad * exponent * a ** (exponent - 1.0))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: a ** 3), [a]


@register_op("matmul")
class _MatMul:
    @staticmethod
    def forward(ctx, a, b):
        ctx.save(a.data, b.data)
        return a.data @ b.data

    @staticmethod
    def backward(node, grad, sink):
        a, b = node.saved
        needs = node.needs
        need_a = needs is None or needs[0]
        need_b = needs is None or needs[1]
        if a.ndim == 1 and b.ndim == 1:
            if need_a:
                sink(0, grad * b)
            if need_b:
                sink(1, grad * a)
            return
        if a.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            if need_a:
                sink(0, (grad[..., None, :] * b).sum(axis=-1).reshape(a.shape)
                     if b.ndim > 2 else b @ grad)
            if need_b:
                sink(1, np.multiply.outer(a, grad) if b.ndim == 2
                     else a[:, None] * grad[..., None, :])
            return
        if b.ndim == 1:
            if need_a:
                sink(0, np.multiply.outer(grad, b).reshape(a.shape)
                     if a.ndim == 2 else grad[..., None] * b)
            if need_b:
                sink(1, (a * grad[..., None]).reshape(-1, a.shape[-1])
                     .sum(axis=0))
            return
        if need_a:
            sink(0, grad @ np.swapaxes(b, -1, -2))
        if need_b:
            sink(1, np.swapaxes(a, -1, -2) @ grad)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        return (lambda a, b: a @ b), [a, b]


# ---------------------------------------------------------------------------
# Registered ops: shape
# ---------------------------------------------------------------------------

@register_op("reshape")
class _Reshape:
    @staticmethod
    def forward(ctx, a, *, shape):
        ctx.save(a.data.shape)
        return a.data.reshape(shape)

    @staticmethod
    def backward(node, grad, sink):
        (src_shape,) = node.saved
        sink(0, grad.reshape(src_shape))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        return (lambda a: a.reshape(3, 4)), [a]


_TRANSPOSE_INV: dict = {}


@register_op("transpose")
class _Transpose:
    @staticmethod
    def forward(ctx, a, *, axes):
        # The inverse permutation depends only on ``axes``; cache it (the
        # saved array is read-only in backward, so sharing is safe).
        inv = _TRANSPOSE_INV.get(axes)
        if inv is None:
            inv = _TRANSPOSE_INV[axes] = np.argsort(axes)
        ctx.save(inv)
        return a.data.transpose(axes)

    @staticmethod
    def backward(node, grad, sink):
        (inv,) = node.saved
        sink(0, grad.transpose(inv))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        return (lambda a: a.transpose(2, 0, 1)), [a]


@register_op("getitem")
class _GetItem:
    @staticmethod
    def forward(ctx, a, *, idx):
        ctx.save(idx, a.data.shape, a.data.dtype)
        return a.data[idx]

    @staticmethod
    def backward(node, grad, sink):
        idx, src_shape, src_dtype = node.saved
        full = np.zeros(src_shape, dtype=src_dtype)
        np.add.at(full, idx, grad)
        sink(0, full)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        return (lambda a: a[1:3, ::2]), [a]


@register_op("squeeze")
class _Squeeze:
    @staticmethod
    def forward(ctx, a, *, axis):
        ctx.save(a.data.shape)
        return a.data.squeeze(axis) if axis is not None else a.data.squeeze()

    @staticmethod
    def backward(node, grad, sink):
        (src_shape,) = node.saved
        sink(0, grad.reshape(src_shape))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 1, 3)), requires_grad=True)
        return (lambda a: a.squeeze(1)), [a]


@register_op("unsqueeze")
class _Unsqueeze:
    @staticmethod
    def forward(ctx, a, *, axis):
        ctx.save(a.data.shape)
        return np.expand_dims(a.data, axis)

    @staticmethod
    def backward(node, grad, sink):
        (src_shape,) = node.saved
        sink(0, grad.reshape(src_shape))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        return (lambda a: a.unsqueeze(1)), [a]


# ---------------------------------------------------------------------------
# Registered ops: reductions
# ---------------------------------------------------------------------------

@register_op("sum")
class _Sum:
    @staticmethod
    def forward(ctx, a, *, axis, keepdims):
        ctx.save(a.data.shape, axis, keepdims)
        return a.data.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(node, grad, sink):
        src_shape, axis, keepdims = node.saved
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        sink(0, np.broadcast_to(g, src_shape))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        return (lambda a: a.sum(axis=1)), [a]


@register_op("mean")
class _Mean:
    @staticmethod
    def forward(ctx, a, *, axis, keepdims):
        src_shape = a.data.shape
        count = a.data.size if axis is None else np.prod(
            [src_shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))])
        ctx.save(src_shape, axis, keepdims, count)
        return a.data.mean(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(node, grad, sink):
        src_shape, axis, keepdims, count = node.saved
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        sink(0, np.broadcast_to(g, src_shape) / count)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        return (lambda a: a.mean(axis=(1, 2))), [a]


@register_op("max")
class _Max:
    @staticmethod
    def forward(ctx, a, *, axis, keepdims):
        out = a.data.max(axis=axis, keepdims=keepdims)
        ctx.save(a.data, out, axis, keepdims)
        return out

    @staticmethod
    def backward(node, grad, sink):
        src, out_data, axis, keepdims = node.saved
        g = grad
        o = out_data
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
            o = np.expand_dims(o, axis)
        mask = (src == o)
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        sink(0, mask * g / counts)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: a.max(axis=1)), [a]


# ---------------------------------------------------------------------------
# Registered ops: elementwise math
# ---------------------------------------------------------------------------

@register_op("exp")
class _Exp:
    @staticmethod
    def forward(ctx, a):
        out = np.exp(a.data)
        ctx.save(out)
        return out

    @staticmethod
    def backward(node, grad, sink):
        (out,) = node.saved
        sink(0, grad * out)

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: a.exp()), [a]


@register_op("log")
class _Log:
    @staticmethod
    def forward(ctx, a):
        ctx.save(a.data)
        return np.log(a.data)

    @staticmethod
    def backward(node, grad, sink):
        (src,) = node.saved
        sink(0, grad / src)

    @staticmethod
    def sample(rng):
        a = Tensor(np.abs(rng.standard_normal((3, 4))) + 0.5, requires_grad=True)
        return (lambda a: a.log()), [a]


@register_op("sqrt")
class _Sqrt:
    @staticmethod
    def forward(ctx, a):
        out = np.sqrt(a.data)
        ctx.save(out)
        return out

    @staticmethod
    def backward(node, grad, sink):
        (out,) = node.saved
        sink(0, grad / (2.0 * out))

    @staticmethod
    def sample(rng):
        a = Tensor(np.abs(rng.standard_normal((3, 4))) + 0.5, requires_grad=True)
        return (lambda a: a.sqrt()), [a]


@register_op("abs")
class _Abs:
    @staticmethod
    def forward(ctx, a):
        ctx.save(a.data)
        return np.abs(a.data)

    @staticmethod
    def backward(node, grad, sink):
        (src,) = node.saved
        sink(0, grad * np.sign(src))

    @staticmethod
    def sample(rng):
        data = rng.standard_normal((3, 4))
        a = Tensor(np.where(data >= 0, data + 0.5, data - 0.5), requires_grad=True)
        return (lambda a: a.abs()), [a]


@register_op("tanh")
class _Tanh:
    @staticmethod
    def forward(ctx, a):
        out = np.tanh(a.data)
        ctx.save(out)
        return out

    @staticmethod
    def backward(node, grad, sink):
        (out,) = node.saved
        sink(0, grad * (1.0 - out ** 2))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: a.tanh()), [a]


@register_op("sin")
class _Sin:
    @staticmethod
    def forward(ctx, a):
        ctx.save(a.data)
        return np.sin(a.data)

    @staticmethod
    def backward(node, grad, sink):
        (src,) = node.saved
        sink(0, grad * np.cos(src))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: a.sin()), [a]


@register_op("cos")
class _Cos:
    @staticmethod
    def forward(ctx, a):
        ctx.save(a.data)
        return np.cos(a.data)

    @staticmethod
    def backward(node, grad, sink):
        (src,) = node.saved
        sink(0, -grad * np.sin(src))

    @staticmethod
    def sample(rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        return (lambda a: a.cos()), [a]


@register_op("clip")
class _Clip:
    @staticmethod
    def forward(ctx, a, *, lo, hi):
        mask = np.ones_like(a.data)
        if lo is not None:
            mask = mask * (a.data >= lo)
        if hi is not None:
            mask = mask * (a.data <= hi)
        ctx.save(mask)
        return np.clip(a.data, lo, hi)

    @staticmethod
    def backward(node, grad, sink):
        (mask,) = node.saved
        sink(0, grad * mask)

    @staticmethod
    def sample(rng):
        a = Tensor(np.array([[-2.0, -0.4, 0.3, 2.2], [1.7, 0.1, -0.6, -3.0]]),
                   requires_grad=True)
        return (lambda a: a.clip(-1.0, 1.0)), [a]


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=_state.default_dtype), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=_state.default_dtype), requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(_state.default_dtype),
                  requires_grad=requires_grad)
