"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the lowest layer of the reproduction: everything the paper
runs in PyTorch (TS3Net, the baselines, Adam) runs here on a from-scratch
``Tensor`` that records a computation graph and back-propagates through it.

The design follows the classic tape-based pattern:

* every operation creates a new :class:`Tensor` whose ``_parents`` point to
  its operands and whose ``_backward`` closure scatters the output gradient
  back onto the operands;
* :meth:`Tensor.backward` topologically sorts the graph and runs the
  closures in reverse order;
* broadcasting is handled by summing gradients over broadcast axes
  (:func:`unbroadcast`).

Only ``float`` dtypes participate in differentiation.  Integer tensors are
allowed as indices/masks but never receive gradients.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

DEFAULT_DTYPE = np.float64

_default_dtype = DEFAULT_DTYPE

_grad_enabled = True

_PRECISIONS = {
    "float32": np.float32,
    "float64": np.float64,
    "f32": np.float32,
    "f64": np.float64,
    "single": np.float32,
    "double": np.float64,
}


def resolve_dtype(precision_or_dtype) -> np.dtype:
    """Map ``'float32'``/``'float64'`` (or a dtype) to a NumPy float dtype."""
    if isinstance(precision_or_dtype, str):
        try:
            return np.dtype(_PRECISIONS[precision_or_dtype])
        except KeyError:
            raise ValueError(
                f"unknown precision {precision_or_dtype!r}; choose from "
                f"{sorted(set(_PRECISIONS))}") from None
    dtype = np.dtype(precision_or_dtype)
    if not np.issubdtype(dtype, np.floating):
        raise ValueError(f"precision dtype must be floating, got {dtype}")
    return dtype


def set_default_dtype(precision_or_dtype) -> None:
    """Set the engine-wide float dtype new tensors are created with."""
    global _default_dtype
    _default_dtype = resolve_dtype(precision_or_dtype).type


def get_default_dtype() -> np.dtype:
    """The float dtype that :class:`Tensor` construction coerces to."""
    return np.dtype(_default_dtype)


class precision:
    """Context manager scoping the engine's default float dtype.

    ``with precision('float32'): ...`` makes every tensor built inside the
    block single precision; the previous default is restored on exit.  The
    boot default is ``float64`` (``DEFAULT_DTYPE``) so seed results are
    unchanged unless a caller opts in.
    """

    def __init__(self, precision_or_dtype):
        self._dtype = resolve_dtype(precision_or_dtype).type

    def __enter__(self):
        global _default_dtype
        self._prev = _default_dtype
        _default_dtype = self._dtype
        return self

    def __exit__(self, *exc):
        global _default_dtype
        _default_dtype = self._prev
        return False


class no_grad:
    """Context manager disabling graph construction (like ``torch.no_grad``)."""

    def __enter__(self):
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc):
        global _grad_enabled
        _grad_enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    If a forward op broadcast an operand of ``shape`` up to ``grad.shape``,
    the operand's gradient is the sum of ``grad`` over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a NumPy array of the engine's default dtype."""
    arr = np.asarray(value)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if np.issubdtype(arr.dtype, np.floating):
        return arr.astype(_default_dtype, copy=False)
    return arr


class Tensor:
    """A NumPy array plus the bookkeeping needed for backpropagation.

    Parameters
    ----------
    data:
        The wrapped array (or anything ``np.asarray`` accepts).
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    __array_priority__ = 100  # make NumPy defer to our reflected operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        self.data = as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Build an op output, wiring the tape only when grad is enabled."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Leaf-style accumulation also applies to interior nodes that the
            # user marked (retain semantics are implicit: interior .grad stays
            # None unless it has no _backward).
            node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(self, grad: np.ndarray,
                           grads: dict[int, np.ndarray]) -> None:
        """Run this node's backward closure, staging gradients per parent."""

        staged: list[np.ndarray] = []

        def sink(parent: Tensor, g: np.ndarray) -> None:
            if not parent.requires_grad:
                return
            g = unbroadcast(np.asarray(g, dtype=parent.data.dtype), parent.data.shape)
            if parent._backward is None and not parent._parents:
                parent._accumulate(g)
            key = id(parent)
            if parent._backward is not None or parent._parents:
                if key in grads:
                    grads[key] = grads[key] + g
                else:
                    grads[key] = g

        self._backward(grad, sink)  # type: ignore[misc]
        del staged

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(as_array(other, dtype=self.data.dtype))

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad, sink):
            sink(self, grad)
            sink(other, grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad, sink):
            sink(self, grad)
            sink(other, -grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad, sink):
            sink(self, grad * other.data)
            sink(other, grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad, sink):
            sink(self, grad / other.data)
            sink(other, -grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __neg__(self):
        def backward(grad, sink):
            sink(self, -grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float):
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward(grad, sink):
            sink(self, grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad, sink):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                sink(self, grad * b)
                sink(other, grad * a)
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                sink(self, (grad[..., None, :] * b).sum(axis=-1).reshape(a.shape)
                     if b.ndim > 2 else b @ grad)
                sink(other, np.multiply.outer(a, grad) if b.ndim == 2
                     else a[:, None] * grad[..., None, :])
                return
            if b.ndim == 1:
                sink(self, np.multiply.outer(grad, b).reshape(a.shape)
                     if a.ndim == 2 else grad[..., None] * b)
                sink(other, (a * grad[..., None]).reshape(-1, a.shape[-1]).sum(axis=0))
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            sink(self, grad_a)
            sink(other, grad_b)

        return Tensor._make(out_data, (self, other), backward)

    # Comparisons produce detached boolean arrays.
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        src_shape = self.data.shape

        def backward(grad, sink):
            sink(self, grad.reshape(src_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inv = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad, sink):
            sink(self, grad.transpose(inv))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        src_shape = self.data.shape
        src_dtype = self.data.dtype

        def backward(grad, sink):
            full = np.zeros(src_shape, dtype=src_dtype)
            np.add.at(full, idx, grad)
            sink(self, full)

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = self.data.squeeze(axis) if axis is not None else self.data.squeeze()
        src_shape = self.data.shape

        def backward(grad, sink):
            sink(self, grad.reshape(src_shape))

        return Tensor._make(out_data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        src_shape = self.data.shape

        def backward(grad, sink):
            sink(self, grad.reshape(src_shape))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        src_shape = self.data.shape

        def backward(grad, sink):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            sink(self, np.broadcast_to(g, src_shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        src_shape = self.data.shape
        count = self.data.size if axis is None else np.prod(
            [src_shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])

        def backward(grad, sink):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            sink(self, np.broadcast_to(g, src_shape) / count)

        return Tensor._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        out = (diff * diff).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        src = self.data

        def backward(grad, sink):
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (src == o)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            sink(self, mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad, sink):
            sink(self, grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad, sink):
            sink(self, grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad, sink):
            sink(self, grad / (2.0 * out_data))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad, sink):
            sink(self, grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad, sink):
            sink(self, grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)

        def backward(grad, sink):
            sink(self, grad * np.cos(self.data))

        return Tensor._make(out_data, (self,), backward)

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def backward(grad, sink):
            sink(self, -grad * np.sin(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, lo: Optional[float] = None, hi: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, lo, hi)
        mask = np.ones_like(self.data)
        if lo is not None:
            mask = mask * (self.data >= lo)
        if hi is not None:
            mask = mask * (self.data <= hi)

        def backward(grad, sink):
            sink(self, grad * mask)

        return Tensor._make(out_data, (self,), backward)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=_default_dtype), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=_default_dtype), requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(_default_dtype),
                  requires_grad=requires_grad)
