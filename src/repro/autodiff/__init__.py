"""From-scratch reverse-mode autodiff substrate (replaces PyTorch)."""

from .graph import (
    GraphProfiler, HookHandle, OpNode, add_op_backward_hook,
    add_op_forward_hook, format_profile, get_op, register_op, registered_ops,
)
from .tensor import (
    Tensor, apply, no_grad, is_grad_enabled, tensor, zeros, ones, zeros_like,
    randn, unbroadcast, DEFAULT_DTYPE, precision, resolve_dtype,
    set_default_dtype, get_default_dtype,
)
from .ops import (
    concat, stack, pad, relu, gelu, sigmoid, softmax, leaky_relu, dropout,
    where, conv2d, conv1d, avg_pool1d, avg_pool2d, max_pool2d,
    mse_loss, mae_loss, masked_mse_loss, unfold2d, fold2d,
    log_softmax, cross_entropy_loss, window_view, instance_std,
)
from .grad_check import check_gradients, check_registered_op, numerical_gradient
from .compile import (
    CompileUnsupported, CompiledForward, CompiledGraph, CompiledStep,
    make_compiled_forward,
)

__all__ = [
    "Tensor", "apply", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones",
    "zeros_like", "randn", "unbroadcast", "DEFAULT_DTYPE", "precision",
    "resolve_dtype", "set_default_dtype", "get_default_dtype",
    "concat", "stack", "pad", "relu", "gelu", "sigmoid", "softmax",
    "leaky_relu", "dropout", "where", "conv2d", "conv1d", "avg_pool1d",
    "avg_pool2d", "max_pool2d", "mse_loss", "mae_loss", "masked_mse_loss",
    "unfold2d", "fold2d", "window_view", "log_softmax",
    "cross_entropy_loss", "instance_std",
    "check_gradients", "check_registered_op",
    "numerical_gradient",
    "CompileUnsupported", "CompiledForward", "CompiledGraph", "CompiledStep",
    "make_compiled_forward",
    "OpNode", "register_op", "get_op", "registered_ops", "HookHandle",
    "add_op_forward_hook", "add_op_backward_hook", "GraphProfiler",
    "format_profile",
]
