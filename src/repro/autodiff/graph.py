"""Op registry, graph IR, and hook-based telemetry for the autodiff tape.

This module is the single door into the tape.  Every differentiable
operation is a *registered op*: a name plus a ``forward``/``backward`` pair
(and a ``sample`` used by the registry-driven gradient-check sweep in
``tests/test_op_registry.py``).  Applying an op records an :class:`OpNode`
— ``(op name, parents, saved tensors)`` — on the output tensor, and
``Tensor.backward()`` walks that explicit graph instead of anonymous
closures.

Node lifecycle
--------------
1. **Record** — ``apply()`` (in :mod:`repro.autodiff.tensor`) runs the
   registered forward, which stashes whatever its backward needs via
   ``ctx.save(...)``; the saved tuple and its retained byte count live on
   the node.
2. **Backward** — the registered backward receives the node and a ``sink``
   callback; it pushes one gradient per parent index.
3. **Free** — unless ``backward(retain_graph=True)`` was requested, the
   node's saved activations are dropped *as soon as its backward has run*,
   and the node is marked ``freed`` so a second backward through it raises
   instead of silently producing wrong gradients.

Hooks
-----
``add_op_forward_hook`` / ``add_op_backward_hook`` register callbacks fired
per op application / per node backward.  They receive
``(op_name, seconds, nbytes)`` where ``nbytes`` is the node's retained
saved-activation bytes (created bytes on forward, freed bytes on backward).
When no hooks are installed the tape skips all timing — the hot path pays
only two truthiness checks.

:class:`GraphProfiler` is the standard consumer: it aggregates per-op-type
call counts, wall-clock, and saved bytes, tracks the live/peak retained
byte watermark across its session, and can additionally ``attach()`` to a
:class:`repro.nn.Module` tree to collect per-module forward timings through
``named_modules()`` forward hooks.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "OpNode", "OpContext", "register_op", "get_op", "registered_ops",
    "add_op_forward_hook", "add_op_backward_hook", "HookHandle",
    "GraphProfiler", "format_profile",
]


class OpContext:
    """Scratch space a registered forward uses to stash backward state."""

    __slots__ = ("saved",)

    def __init__(self):
        self.saved: tuple = ()

    def save(self, *values) -> None:
        """Record the values the op's backward will need."""
        self.saved = values


def _retained_nbytes(saved: tuple) -> int:
    """Bytes of array buffers a saved tuple keeps alive.

    Views (slices, ``as_strided`` windows) are charged at the size of their
    *base* buffer — that is what the node actually pins in memory — and a
    buffer reachable twice from one node is counted once.
    """
    seen: set = set()
    total = 0
    for value in saved:
        if isinstance(value, np.ndarray):
            root = value
            while isinstance(root.base, np.ndarray):
                root = root.base
            if id(root) not in seen:
                seen.add(id(root))
                total += root.nbytes
    return total


class OpNode:
    """One recorded operation: the IR unit ``Tensor.backward()`` walks."""

    __slots__ = ("op", "parents", "saved", "saved_bytes", "freed", "needs")

    def __init__(self, op: str, parents: tuple, saved: tuple):
        self.op = op
        self.parents = parents
        self.saved = saved
        self.saved_bytes = _retained_nbytes(saved)
        self.freed = False
        # Per-parent "gradient wanted" mask, filled in by the backward
        # driver (eager walk or compiled program) just before dispatch.
        # ``None`` means "compute everything"; op backwards that honour the
        # mask skip dead input gradients (the sink would discard them).
        self.needs = None

    def free(self) -> int:
        """Drop saved activations + parent links; returns the bytes released."""
        released = self.saved_bytes
        self.saved = ()
        self.saved_bytes = 0
        self.parents = ()
        self.freed = True
        return released

    def __repr__(self) -> str:
        return (f"OpNode({self.op!r}, parents={len(self.parents)}, "
                f"saved_bytes={self.saved_bytes}, freed={self.freed})")


class OpSpec:
    """A registry entry: named forward/backward (+ grad-check sample)."""

    __slots__ = ("name", "forward", "backward", "sample")

    def __init__(self, name: str, forward: Callable, backward: Callable,
                 sample: Optional[Callable]):
        self.name = name
        self.forward = forward
        self.backward = backward
        self.sample = sample


_REGISTRY: Dict[str, OpSpec] = {}


def register_op(name: str):
    """Class decorator registering a differentiable op under ``name``.

    The decorated class provides::

        forward(ctx, *parents, **kwargs) -> np.ndarray   # ctx.save(...) state
        backward(node, grad, sink) -> None               # sink(i, grad_i)
        sample(rng) -> (fn, [tensors])                   # grad-check case

    ``sample`` is *required in CI*: ``tests/test_op_registry.py`` sweeps
    every registry entry through ``check_gradients``, so an op registered
    without a sample (or with a wrong backward) fails by construction.
    """

    def decorator(cls):
        if name in _REGISTRY:
            raise ValueError(f"op {name!r} already registered")
        sample = getattr(cls, "sample", None)
        _REGISTRY[name] = OpSpec(name, cls.forward, cls.backward, sample)
        return cls

    return decorator


def get_op(name: str) -> OpSpec:
    """Look up a registered op (KeyError on unknown names)."""
    return _REGISTRY[name]


def registered_ops() -> Dict[str, OpSpec]:
    """A snapshot of the registry (name -> spec), for sweeps and docs."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Op-level hooks
# ---------------------------------------------------------------------------

_forward_hooks: Dict[int, Callable] = {}
_backward_hooks: Dict[int, Callable] = {}
_next_hook_id = 0


class HookHandle:
    """Removable registration token returned by the ``add_op_*_hook``s."""

    def __init__(self, store: Dict[int, Callable], key: int):
        self._store = store
        self._key = key

    def remove(self) -> None:
        self._store.pop(self._key, None)


def _add_hook(store: Dict[int, Callable], fn: Callable) -> HookHandle:
    global _next_hook_id
    _next_hook_id += 1
    store[_next_hook_id] = fn
    return HookHandle(store, _next_hook_id)


def add_op_forward_hook(fn: Callable[[str, float, int], None]) -> HookHandle:
    """Fire ``fn(op_name, seconds, saved_bytes)`` after every op forward."""
    return _add_hook(_forward_hooks, fn)


def add_op_backward_hook(fn: Callable[[str, float, int], None]) -> HookHandle:
    """Fire ``fn(op_name, seconds, freed_bytes)`` after every node backward."""
    return _add_hook(_backward_hooks, fn)


def _clock() -> float:
    return time.perf_counter()


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------

class GraphProfiler:
    """Per-op (and optionally per-module) telemetry over a profiling session.

    Use as a context manager (or ``start()``/``stop()``)::

        profiler = GraphProfiler()
        profiler.attach(model)          # optional per-module timings
        with profiler:
            loss = step(); loss.backward()
        print(profiler.table())

    Collected per op type: call count, forward/backward wall-clock, and
    saved-activation bytes.  ``peak_saved_bytes`` is the high watermark of
    retained activation bytes over the session — with the default freeing
    policy it drops as backward consumes nodes, so it directly measures the
    memory the freeing policy saves versus ``retain_graph=True``.

    The watermark tracks free *events*: graphs that are built but never
    backwarded (and are garbage-collected instead) do not decrement it, so
    profile complete train steps for meaningful numbers.
    """

    def __init__(self):
        self.ops: Dict[str, Dict[str, float]] = {}
        self.modules: Dict[str, Dict[str, float]] = {}
        self.live_saved_bytes = 0
        self.peak_saved_bytes = 0
        self._handles: List[HookHandle] = []
        self._module_handles: list = []
        self._module_stacks: Dict[str, list] = {}

    # -- session lifecycle ---------------------------------------------
    def start(self) -> "GraphProfiler":
        if not self._handles:
            self._handles = [add_op_forward_hook(self._on_forward),
                             add_op_backward_hook(self._on_backward)]
        return self

    def stop(self) -> "GraphProfiler":
        for handle in self._handles:
            handle.remove()
        self._handles = []
        return self

    __enter__ = start

    def __exit__(self, *exc):
        self.stop()
        return False

    # -- op hooks -------------------------------------------------------
    def _op_entry(self, name: str) -> Dict[str, float]:
        entry = self.ops.get(name)
        if entry is None:
            entry = self.ops[name] = {"calls": 0, "forward_s": 0.0,
                                      "backward_s": 0.0, "saved_bytes": 0}
        return entry

    def _on_forward(self, name: str, seconds: float, saved_bytes: int) -> None:
        entry = self._op_entry(name)
        entry["calls"] += 1
        entry["forward_s"] += seconds
        entry["saved_bytes"] += saved_bytes
        self.live_saved_bytes += saved_bytes
        if self.live_saved_bytes > self.peak_saved_bytes:
            self.peak_saved_bytes = self.live_saved_bytes

    def _on_backward(self, name: str, seconds: float, freed_bytes: int) -> None:
        entry = self._op_entry(name)
        entry["backward_s"] += seconds
        self.live_saved_bytes -= freed_bytes

    # -- per-module forward hooks --------------------------------------
    def attach(self, model) -> "GraphProfiler":
        """Install forward hooks on every module in ``model.named_modules()``."""
        for name, module in model.named_modules():
            label = f"{name or type(model).__name__} ({type(module).__name__})"
            stack = self._module_stacks.setdefault(label, [])
            pre = module.register_forward_pre_hook(
                lambda m, args, _stack=stack: _stack.append(_clock()))
            post = module.register_forward_hook(
                lambda m, args, out, _stack=stack, _label=label:
                self._on_module(_label, _stack))
            self._module_handles.extend([pre, post])
        return self

    def detach(self) -> "GraphProfiler":
        for handle in self._module_handles:
            handle.remove()
        self._module_handles = []
        return self

    def _on_module(self, label: str, stack: list) -> None:
        if stack:
            elapsed = _clock() - stack.pop()
            entry = self.modules.get(label)
            if entry is None:
                entry = self.modules[label] = {"calls": 0, "seconds": 0.0}
            entry["calls"] += 1
            entry["seconds"] += elapsed

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        """Plain-dict snapshot (recorded on ``FitResult.profile``)."""
        return {
            "ops": {name: dict(stats) for name, stats in self.ops.items()},
            "modules": {name: dict(stats)
                        for name, stats in self.modules.items()},
            "peak_saved_bytes": self.peak_saved_bytes,
            "live_saved_bytes": self.live_saved_bytes,
        }

    def table(self) -> str:
        return format_profile(self.summary())


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{int(n):,} B"
        n /= 1024.0
    return f"{n:,.1f} GiB"


def format_profile(summary: dict, top: int = 0) -> str:
    """Render a profiler summary dict as the CLI's ``--profile`` table."""
    ops = summary.get("ops", {})
    lines = [f"{'op':24s} {'calls':>8s} {'forward':>10s} {'backward':>10s} "
             f"{'saved':>12s}"]
    ranked = sorted(ops.items(),
                    key=lambda kv: kv[1]["forward_s"] + kv[1]["backward_s"],
                    reverse=True)
    if top:
        ranked = ranked[:top]
    total_f = total_b = 0.0
    for name, stats in ranked:
        total_f += stats["forward_s"]
        total_b += stats["backward_s"]
        lines.append(
            f"{name:24s} {stats['calls']:8d} {stats['forward_s'] * 1e3:8.1f}ms "
            f"{stats['backward_s'] * 1e3:8.1f}ms "
            f"{_fmt_bytes(stats['saved_bytes']):>12s}")
    lines.append(f"{'total':24s} {'':8s} {total_f * 1e3:8.1f}ms "
                 f"{total_b * 1e3:8.1f}ms "
                 f"{_fmt_bytes(summary.get('peak_saved_bytes', 0)):>12s} peak")
    modules = summary.get("modules", {})
    if modules:
        lines.append("")
        lines.append(f"{'module':44s} {'calls':>8s} {'forward':>10s}")
        ranked_mods = sorted(modules.items(),
                             key=lambda kv: kv[1]["seconds"], reverse=True)
        if top:
            ranked_mods = ranked_mods[:top]
        for name, stats in ranked_mods:
            lines.append(f"{name:44s} {stats['calls']:8d} "
                         f"{stats['seconds'] * 1e3:8.1f}ms")
    return "\n".join(lines)
