"""Anomaly detection via reconstruction error (extension beyond the paper).

The paper positions TS3Net as *task-general* and evaluates forecasting and
imputation; anomaly detection is listed among the motivating applications.
This module provides the standard reconstruction protocol on top of any
imputation-shaped model (the TimesNet benchmark-suite recipe): train the
model to reconstruct clean windows, score each time point by its mean
reconstruction residual, and flag points above a quantile threshold.  The
full contract is declared as the ``anomaly``
:class:`~repro.tasks.registry.TaskSpec` at the bottom.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autodiff import Tensor, mse_loss, no_grad
from ..data.dataset import DataLoader, ImputationWindows, SplitData, load_dataset
from ..nn.module import Module
from .registry import (
    ServingContract, TaskSpec, checkpoint_overrides, register_task,
    resolve_batch_policy, run_task,
)
from .trainer import FitResult, TrainConfig, Trainer


@dataclass
class AnomalyResult:
    """Per-point scores and the binary detections at the chosen threshold."""

    scores: np.ndarray       # (N,) mean reconstruction error per time point
    threshold: float
    detections: np.ndarray   # (N,) boolean

    def detection_rate(self) -> float:
        return float(self.detections.mean())


def score_series(model: Module, data: np.ndarray, seq_len: int,
                 stride: Optional[int] = None) -> np.ndarray:
    """Mean absolute reconstruction residual per time point.

    The series is covered with (possibly overlapping) windows; each point's
    score averages the residuals of every window that covers it.
    """
    data = np.asarray(data, dtype=float)
    stride = stride or seq_len
    windows = ImputationWindows(data, seq_len, stride=stride)
    totals = np.zeros(len(data))
    counts = np.zeros(len(data))

    model.eval()
    for idx in range(len(windows)):
        window = windows[idx]
        start = idx * stride
        with no_grad():
            recon = model(Tensor(window[None])).data[0]
        residual = np.abs(recon - window).mean(axis=-1)
        totals[start:start + seq_len] += residual
        counts[start:start + seq_len] += 1

    covered = counts > 0
    scores = np.zeros(len(data))
    scores[covered] = totals[covered] / counts[covered]
    return scores


def detect_anomalies(model: Module, data: np.ndarray, seq_len: int,
                     anomaly_ratio: float = 0.01,
                     stride: Optional[int] = None) -> AnomalyResult:
    """Flag the top ``anomaly_ratio`` fraction of points by residual score."""
    if not 0.0 < anomaly_ratio < 1.0:
        raise ValueError(f"anomaly_ratio must be in (0, 1), got {anomaly_ratio}")
    scores = score_series(model, data, seq_len, stride=stride)
    threshold = float(np.quantile(scores, 1.0 - anomaly_ratio))
    return AnomalyResult(scores=scores, threshold=threshold,
                         detections=scores > threshold)


# ---------------------------------------------------------------------------
# Training driver (shared Trainer, like every other task)
# ---------------------------------------------------------------------------

@dataclass
class AnomalyTask:
    """One anomaly configuration: window length + flagged fraction."""

    seq_len: int = 96
    anomaly_ratio: float = 0.01
    batch_size: int = 16
    stride: int = 1
    max_train_batches: Optional[int] = None
    max_eval_batches: Optional[int] = None
    seed: int = 0

    def loaders(self, split: SplitData):
        train = DataLoader(
            ImputationWindows(split.train, self.seq_len, self.stride),
            batch_size=self.batch_size, shuffle=True, seed=self.seed,
            max_batches=self.max_train_batches, reuse_buffers=True)
        val = DataLoader(
            ImputationWindows(split.val, self.seq_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        test = DataLoader(
            ImputationWindows(split.test, self.seq_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        return train, val, test


def reconstruction_step(model: Module):
    """Step function training full-window reconstruction (no masking)."""

    def step(batch):
        window = batch
        pred = model(Tensor(window))
        loss = mse_loss(pred, window)
        return loss, pred.data, window, None

    return step


def run_anomaly(model: Module, split: SplitData, task: AnomalyTask,
                train_cfg: Optional[TrainConfig] = None) -> FitResult:
    """Train a reconstruction model and report residual-threshold metrics."""
    return run_task(ANOMALY_SPEC, model, split, task, train_cfg)


# ---------------------------------------------------------------------------
# TaskSpec wiring
# ---------------------------------------------------------------------------

def _make_config(seq_len, setting, *, batch_size=16, max_train_batches=None,
                 max_eval_batches=None, seed=0) -> AnomalyTask:
    return AnomalyTask(seq_len=seq_len, anomaly_ratio=float(setting),
                       batch_size=batch_size,
                       max_train_batches=max_train_batches,
                       max_eval_batches=max_eval_batches, seed=seed)


def _evaluate(trainer: Trainer, test_loader, model, config, data):
    mse, mae = trainer.evaluate(test_loader, reconstruction_step(model))
    start = time.perf_counter()
    result = detect_anomalies(model, data.test, config.seq_len,
                              anomaly_ratio=config.anomaly_ratio)
    trainer.last_eval_seconds += time.perf_counter() - start
    return {"mse": mse, "mae": mae, "threshold": result.threshold,
            "detection_rate": result.detection_rate()}


def _build(model_name, config, c_in, preset="tiny", **overrides):
    from ..baselines.registry import build_model
    return build_model(model_name, seq_len=config.seq_len,
                       pred_len=config.seq_len, c_in=c_in, task="imputation",
                       preset=preset, **overrides)


def _rebuild(meta):
    from ..baselines.registry import build_model
    return build_model(meta["model"], seq_len=meta["seq_len"],
                       pred_len=meta["pred_len"], c_in=meta["c_in"],
                       task="imputation", preset=meta.get("preset", "tiny"),
                       **checkpoint_overrides(meta))


def _postprocess(entry, row, window, payload):
    """Residual scores + quantile detections for one reconstructed window.

    Pure per-row math on the (already bit-identical) batched model output,
    so the response inherits the determinism guarantee.
    """
    ratio = payload.get("anomaly_ratio", 0.01)
    if not isinstance(ratio, (int, float)) or not 0.0 < ratio < 1.0:
        raise ValueError(f"anomaly_ratio must be in (0, 1), got {ratio!r}")
    scores = np.abs(row - window).mean(axis=-1)
    threshold = float(np.quantile(scores, 1.0 - ratio))
    return {"scores": scores.tolist(), "threshold": threshold,
            "detections": (scores > threshold).tolist()}


def _add_infer_args(parser) -> None:
    parser.add_argument("--dataset", default=None)
    parser.add_argument("--n-steps", type=int, default=2000)
    parser.add_argument("--anomaly-ratio", type=float, default=None,
                        help="fraction of points to flag (default: the "
                             "ratio stored in the checkpoint, else 0.01)")


def _run_infer(args, meta, model) -> str:
    """Score the test split from a checkpoint and report the detections."""
    split = load_dataset(args.dataset or meta["dataset"],
                         n_steps=args.n_steps, seed=args.seed)
    ratio = (args.anomaly_ratio if args.anomaly_ratio is not None
             else meta.get("anomaly_ratio", 0.01))
    result = detect_anomalies(model, split.test, meta["seq_len"],
                              anomaly_ratio=ratio)
    n = int(result.detections.sum())
    return (f"{meta['model']} anomaly detection on "
            f"{args.dataset or meta['dataset']}: flagged {n}/"
            f"{len(result.detections)} points "
            f"({result.detection_rate():.2%}) at threshold "
            f"{result.threshold:.4f} (ratio {ratio})")


def _format_result(result: FitResult) -> str:
    return (f"test MSE={result.mse:.4f} MAE={result.mae:.4f} "
            f"threshold={result.metrics['threshold']:.4f} "
            f"detection_rate={result.metrics['detection_rate']:.2%}")


ANOMALY_SPEC = register_task(TaskSpec(
    name="anomaly",
    summary="reconstruction-residual scoring with a quantile threshold",
    setting_name="anomaly_ratio",
    setting_arg="anomaly_ratio",
    default_setting=0.01,
    needs_split=True,
    make_config=_make_config,
    load_data=None,
    channels=lambda split: split.train.shape[1],
    loaders=lambda split, config: config.loaders(split),
    step=lambda model, config: reconstruction_step(model),
    evaluate=_evaluate,
    metric_names=("mse", "mae", "threshold", "detection_rate"),
    model_task="imputation",
    build=_build,
    rebuild=_rebuild,
    out_len=lambda config: config.seq_len,
    checkpoint_extra=lambda model, config: {
        "anomaly_ratio": config.anomaly_ratio},
    serving=ServingContract(
        singular="score",
        plural="scores",
        description="window (seq_len x c_in) -> residual scores + detections",
        batch_policy=resolve_batch_policy,
        postprocess=_postprocess,
        body_extra=lambda entry: {"seq_len": entry.seq_len},
    ),
    infer_command="detect",
    infer_help="score a series for anomalies from a checkpoint",
    add_infer_args=_add_infer_args,
    run_infer=_run_infer,
    format_result=_format_result,
))
