"""Anomaly scoring via reconstruction error (extension beyond the paper).

The paper positions TS3Net as *task-general* and evaluates forecasting and
imputation; anomaly detection is listed among the motivating applications.
This module provides the standard reconstruction-error anomaly scorer on
top of any imputation-trained model: score each time point by the model's
reconstruction residual, and flag points above a quantile threshold —
the protocol used by the TimesNet benchmark suite for the anomaly task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autodiff import Tensor, no_grad
from ..data.dataset import ImputationWindows
from ..nn.module import Module


@dataclass
class AnomalyResult:
    """Per-point scores and the binary detections at the chosen threshold."""

    scores: np.ndarray       # (N,) mean reconstruction error per time point
    threshold: float
    detections: np.ndarray   # (N,) boolean

    def detection_rate(self) -> float:
        return float(self.detections.mean())


def score_series(model: Module, data: np.ndarray, seq_len: int,
                 stride: Optional[int] = None) -> np.ndarray:
    """Mean absolute reconstruction residual per time point.

    The series is covered with (possibly overlapping) windows; each point's
    score averages the residuals of every window that covers it.
    """
    data = np.asarray(data, dtype=float)
    stride = stride or seq_len
    windows = ImputationWindows(data, seq_len, stride=stride)
    totals = np.zeros(len(data))
    counts = np.zeros(len(data))

    model.eval()
    for idx in range(len(windows)):
        window = windows[idx]
        start = idx * stride
        with no_grad():
            recon = model(Tensor(window[None])).data[0]
        residual = np.abs(recon - window).mean(axis=-1)
        totals[start:start + seq_len] += residual
        counts[start:start + seq_len] += 1

    covered = counts > 0
    scores = np.zeros(len(data))
    scores[covered] = totals[covered] / counts[covered]
    return scores


def detect_anomalies(model: Module, data: np.ndarray, seq_len: int,
                     anomaly_ratio: float = 0.01,
                     stride: Optional[int] = None) -> AnomalyResult:
    """Flag the top ``anomaly_ratio`` fraction of points by residual score."""
    if not 0.0 < anomaly_ratio < 1.0:
        raise ValueError(f"anomaly_ratio must be in (0, 1), got {anomaly_ratio}")
    scores = score_series(model, data, seq_len, stride=stride)
    threshold = float(np.quantile(scores, 1.0 - anomaly_ratio))
    return AnomalyResult(scores=scores, threshold=threshold,
                         detections=scores > threshold)
