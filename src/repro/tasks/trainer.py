"""Training loop shared by every model and task.

Implements the paper's protocol (Table III + Sec. IV-C): Adam with MSE
loss, per-epoch exponential LR decay, and early stopping with patience 3
that restores the best validation weights.

The trainer is task-agnostic: forecasting and imputation supply a
``step_fn(batch) -> (loss_tensor, pred, target, mask_or_None)`` and the
trainer handles batching, optimisation, validation, and metric collection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..autodiff import GraphProfiler, Tensor, no_grad, precision, resolve_dtype
from ..nn.module import Module
from ..obs import console as _console
from ..obs import events as _obs_events
from ..obs import runtime as _obs
from ..optim import Adam, EarlyStopping, ExponentialDecay, clip_grad_norm

StepFn = Callable[[object], Tuple[Tensor, np.ndarray, np.ndarray, Optional[np.ndarray]]]


@dataclass
class TrainConfig:
    """Optimisation hyper-parameters (paper defaults from Table III)."""

    epochs: int = 10
    lr: float = 1e-4
    patience: int = 3
    lr_decay: float = 0.5
    clip_norm: Optional[float] = None
    verbose: bool = False
    precision: str = "float64"
    profile: bool = False
    # Compiled execution (repro.autodiff.compile): capture/replay the
    # training step per (shape, dtype, trace-signature) key.  Bitwise
    # identical to eager by construction — validated on the first replay,
    # with permanent eager fallback on any mismatch.
    compiled: bool = False
    compile_workers: int = 1


@dataclass
class FitResult:
    """Training history plus final test metrics.

    Besides the total wall-clock (``seconds``), the trainer records a
    per-epoch breakdown (``epoch_seconds``) and the train-vs-evaluation
    split (``train_seconds`` covers optimiser epochs; ``eval_seconds``
    covers validation passes plus the final test evaluation) so grid-level
    benchmarks can attribute regressions to the right phase.
    """

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    mse: float = float("nan")
    mae: float = float("nan")
    # Full task-specific metric bundle (e.g. accuracy/f1 for
    # classification, threshold/detection_rate for anomaly); mse/mae above
    # stay filled when the task reports them, for legacy consumers.
    metrics: Dict[str, float] = field(default_factory=dict)
    epochs_run: int = 0
    seconds: float = 0.0
    epoch_seconds: List[float] = field(default_factory=list)
    train_seconds: float = 0.0
    eval_seconds: float = 0.0
    # GraphProfiler.summary() dict when TrainConfig.profile was set:
    # per-op calls/wall-clock/saved-activation bytes, per-module timings,
    # and the peak retained-activation watermark.
    profile: Optional[dict] = None

    def as_row(self) -> Dict[str, float]:
        return {"mse": self.mse, "mae": self.mae}


class Trainer:
    """Fit a model with Adam + early stopping; evaluate with MSE/MAE."""

    def __init__(self, model: Module, config: Optional[TrainConfig] = None):
        self.model = model
        self.config = config or TrainConfig()
        # Cast the model before the optimiser snapshots parameter shapes so
        # Adam's moment buffers share the training precision.
        self._dtype = resolve_dtype(self.config.precision)
        if self._dtype != np.float64:
            model.to(self._dtype)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.scheduler = ExponentialDecay(self.optimizer, gamma=self.config.lr_decay)
        self.last_eval_seconds = 0.0
        self._compiled_step = None

    # ------------------------------------------------------------------
    def _run_epoch(self, loader, step_fn: StepFn, train: bool) -> float:
        with precision(self._dtype):
            return self._run_epoch_inner(loader, step_fn, train)

    def _run_epoch_inner(self, loader, step_fn: StepFn, train: bool) -> float:
        self.model.train(train)
        # Running sum instead of a per-batch list: one float per step, no
        # array allocation at epoch end.
        loss_sum = 0.0
        batches = 0
        cstep = self._compiled_step
        for batch in loader:
            if train:
                if cstep is not None:
                    # Capture/validate/replay (or its own eager fallback);
                    # zero_grad + forward + backward happen inside.
                    loss_val = cstep.step(batch)
                else:
                    self.model.zero_grad()
                    loss, *_ = step_fn(batch)
                    loss.backward()
                    loss_val = float(loss.data)
                if self.config.clip_norm:
                    clip_grad_norm(self.model.parameters(), self.config.clip_norm)
                self.optimizer.step()
            else:
                with no_grad():
                    loss, *_ = step_fn(batch)
                loss_val = float(loss.data)
            loss_sum += loss_val
            batches += 1
        return loss_sum / batches if batches else float("nan")

    def fit(self, train_loader, val_loader, step_fn: StepFn,
            compiled: Optional[bool] = None,
            task: Optional[str] = None) -> FitResult:
        """Train until the epoch budget or early stopping trips.

        ``compiled`` overrides ``TrainConfig.compiled``: when on, training
        steps run through a :class:`repro.autodiff.compile.CompiledStep`
        (capture/replay with fusion, buffer pooling, and parallel
        dispatch), which is bitwise-validated against the eager step and
        falls back to eager execution on any unsupported construct.
        ``task`` (the registry name, when fitting through
        ``repro.tasks.registry.run_task``) tags the compiled trace key so
        different tasks' captures of the same model never collide, and is
        recorded on the fit span.

        When an observer is configured (``repro.obs.configure``), the fit
        runs under a ``trainer.fit`` span with one retroactive
        ``trainer.epoch`` child span per epoch; with observability off,
        the only extra work is the ``obs.active()`` load below (gated by
        the ``trainer_obs_disabled_overhead`` benchmark fact).
        """
        use_compiled = self.config.compiled if compiled is None else compiled
        self._compiled_step = (
            self._make_compiled_step(step_fn, tag=task or "")
            if use_compiled else None)
        ob = _obs.active()
        if ob is None:
            return self._fit(None, train_loader, val_loader, step_fn)
        with ob.span("trainer.fit", {
                "model": type(self.model).__name__,
                "task": task or "",
                "epochs": self.config.epochs,
                "precision": self.config.precision}) as span:
            result = self._fit(ob, train_loader, val_loader, step_fn)
            span.set(epochs_run=result.epochs_run,
                     train_seconds=result.train_seconds,
                     eval_seconds=result.eval_seconds)
            if result.profile is not None:
                span.set(profile=result.profile)
        return result

    def _make_compiled_step(self, step_fn: StepFn, tag: str = ""):
        from ..autodiff.compile import CompiledStep, CompileUnsupported
        try:
            return CompiledStep(self.model, step_fn,
                                workers=self.config.compile_workers, tag=tag)
        except CompileUnsupported as exc:
            ob = _obs.active()
            if ob is not None:
                ob.event("compile.fallback",
                         {"reason": str(exc), "mode": "train",
                          "model": type(self.model).__name__})
            return None

    def _fit(self, ob, train_loader, val_loader, step_fn: StepFn) -> FitResult:
        result = FitResult()
        stopper = EarlyStopping(patience=self.config.patience)
        profiler = None
        if self.config.profile:
            profiler = GraphProfiler().attach(self.model).start()
        start = time.time()
        try:
            self._fit_loop(ob, result, stopper, train_loader, val_loader,
                           step_fn)
        finally:
            if profiler is not None:
                profiler.stop().detach()
                result.profile = profiler.summary()
        stopper.restore_best(self.model)
        result.seconds = time.time() - start
        if ob is not None:
            if result.profile is not None:
                # Satellite of the compiled-mode PR: the --profile summary
                # is a first-class run event, rendered as a per-op table by
                # repro.obs.report.
                ob.event("trainer.profile", {
                    "model": type(self.model).__name__,
                    **result.profile})
            if self._compiled_step is not None:
                ob.event("trainer.compiled",
                         dict(self._compiled_step.stats(),
                              model=type(self.model).__name__))
        return result

    def _fit_loop(self, ob, result: FitResult, stopper, train_loader,
                  val_loader, step_fn: StepFn) -> None:
        for epoch in range(self.config.epochs):
            t0 = time.perf_counter()
            train_loss = self._run_epoch(train_loader, step_fn, train=True)
            t1 = time.perf_counter()
            val_loss = self._run_epoch(val_loader, step_fn, train=False)
            t2 = time.perf_counter()
            result.train_seconds += t1 - t0
            result.eval_seconds += t2 - t1
            result.epoch_seconds.append(t2 - t0)
            result.train_losses.append(train_loss)
            result.val_losses.append(val_loss)
            result.epochs_run = epoch + 1
            if ob is not None or self.config.verbose:
                self._emit_epoch(ob, epoch + 1, train_loss, val_loss,
                                 t1 - t0, t2 - t1)
            stopper.update(val_loss, self.model)
            if stopper.should_stop:
                break
            self.scheduler.step()

    def _emit_epoch(self, ob, epoch: int, train_loss: float, val_loss: float,
                    train_s: float, eval_s: float) -> None:
        """Route the per-epoch record to the event sink and/or the console."""
        attrs = {"epoch": epoch, "train_loss": train_loss,
                 "val_loss": val_loss, "train_seconds": train_s,
                 "eval_seconds": eval_s}
        rec = None
        if ob is not None:
            rec = ob.emit_span("trainer.epoch", train_s + eval_s, attrs)
            ob.registry.counter("repro_train_epochs_total",
                                "Completed training epochs.").inc()
        if self.config.verbose:
            _console.emit_record(rec if rec is not None else _obs_events.record(
                "span_end", "trainer.epoch", attrs, dur_s=train_s + eval_s))

    def evaluate(self, loader, step_fn: StepFn) -> Tuple[float, float]:
        """Aggregate MSE/MAE over a loader (mask-aware via the step_fn).

        Wall-clock for the pass is recorded on ``self.last_eval_seconds``
        so task drivers can fold it into ``FitResult.eval_seconds``.
        """
        start = time.perf_counter()
        self.model.eval()
        sq_sum = abs_sum = 0.0
        count = 0
        for batch in loader:
            with no_grad(), precision(self._dtype):
                _, pred, target, mask = step_fn(batch)
            if mask is not None:
                sel = np.asarray(mask, dtype=bool)
                diff = (pred - target)[sel]
            else:
                diff = np.ravel(pred - target)
            # np.dot on the flat residual beats (diff ** 2).sum(): no
            # squared temporary, single BLAS reduction.
            sq_sum += float(np.dot(diff, diff))
            abs_sum += float(np.abs(diff).sum())
            count += diff.size
        self.last_eval_seconds = time.perf_counter() - start
        if count == 0:
            return float("nan"), float("nan")
        return sq_sum / count, abs_sum / count
