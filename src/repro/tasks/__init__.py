"""Task drivers: the TaskSpec registry, shared trainer, and four tasks.

Every task (forecast, imputation, classification, anomaly) declares its
full contract — loaders, step function, metrics, checkpoint metadata,
serving schema, CLI inference — as a :class:`~repro.tasks.registry.
TaskSpec`; every layer (experiments grid, serialization, serving, CLI)
dispatches through :func:`~repro.tasks.registry.get_task`.
"""

from .metrics import accuracy, evaluate_all, f1_score, mae, mape, mse, rmse
from .registry import (
    STACK_SAFE_CLASSES, ServingContract, TaskSpec, UnknownTaskError,
    get_task, rebuild_from_metadata, register_task, resolve_batch_policy,
    run_task, task_names, task_specs,
)
from .trainer import FitResult, TrainConfig, Trainer
from .forecasting import ForecastTask, forecast_step, predict, run_forecast
from .imputation import ImputationTask, imputation_step, run_imputation
from .anomaly import (
    AnomalyResult, AnomalyTask, detect_anomalies, reconstruction_step,
    run_anomaly, score_series,
)
from .classification import (
    ClassificationResult, ClassificationTask, SeriesClassifier,
    classification_step, make_classification_dataset, run_classification,
)

__all__ = [
    "accuracy", "evaluate_all", "f1_score", "mae", "mape", "mse", "rmse",
    "STACK_SAFE_CLASSES", "ServingContract", "TaskSpec", "UnknownTaskError",
    "get_task", "rebuild_from_metadata", "register_task",
    "resolve_batch_policy", "run_task", "task_names", "task_specs",
    "FitResult", "TrainConfig", "Trainer",
    "ForecastTask", "forecast_step", "predict", "run_forecast",
    "ImputationTask", "imputation_step", "run_imputation",
    "AnomalyResult", "AnomalyTask", "detect_anomalies",
    "reconstruction_step", "run_anomaly", "score_series",
    "ClassificationResult", "ClassificationTask", "SeriesClassifier",
    "classification_step", "make_classification_dataset",
    "run_classification",
]
