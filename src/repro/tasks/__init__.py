"""Task drivers: training loop, metrics, forecasting, imputation."""

from .metrics import evaluate_all, mae, mape, mse, rmse
from .trainer import FitResult, TrainConfig, Trainer
from .forecasting import ForecastTask, forecast_step, predict, run_forecast
from .imputation import ImputationTask, imputation_step, run_imputation
from .anomaly import AnomalyResult, detect_anomalies, score_series
from .classification import (
    ClassificationResult, SeriesClassifier, make_classification_dataset,
    run_classification,
)

__all__ = [
    "evaluate_all", "mae", "mape", "mse", "rmse",
    "FitResult", "TrainConfig", "Trainer",
    "ForecastTask", "forecast_step", "predict", "run_forecast",
    "ImputationTask", "imputation_step", "run_imputation",
    "AnomalyResult", "detect_anomalies", "score_series",
    "ClassificationResult", "SeriesClassifier",
    "make_classification_dataset", "run_classification",
]
