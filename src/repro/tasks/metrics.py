"""Evaluation metrics: MSE and MAE (the paper's two), plus common extras."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def mse(pred: np.ndarray, target: np.ndarray,
        mask: Optional[np.ndarray] = None) -> float:
    """Mean squared error; with ``mask``, only True positions count."""
    pred, target = np.asarray(pred), np.asarray(target)
    err = (pred - target) ** 2
    if mask is not None:
        sel = err[np.asarray(mask, dtype=bool)]
        return float(sel.mean()) if sel.size else 0.0
    return float(err.mean())


def mae(pred: np.ndarray, target: np.ndarray,
        mask: Optional[np.ndarray] = None) -> float:
    """Mean absolute error; with ``mask``, only True positions count."""
    pred, target = np.asarray(pred), np.asarray(target)
    err = np.abs(pred - target)
    if mask is not None:
        sel = err[np.asarray(mask, dtype=bool)]
        return float(sel.mean()) if sel.size else 0.0
    return float(err.mean())


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    return float(np.sqrt(mse(pred, target)))


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error (guarded against zero targets)."""
    pred, target = np.asarray(pred), np.asarray(target)
    return float(np.mean(np.abs((pred - target) / (np.abs(target) + eps))))


def accuracy(pred: np.ndarray, target: np.ndarray) -> float:
    """Fraction of exactly matching labels (NaN on empty input)."""
    pred, target = np.asarray(pred), np.asarray(target)
    if pred.size == 0:
        return float("nan")
    return float((pred == target).mean())


def f1_score(pred: np.ndarray, target: np.ndarray,
             average: str = "macro") -> float:
    """Macro-averaged F1 over the label set seen in ``pred`` or ``target``.

    A class absent from both predictions and targets contributes nothing;
    a class with zero precision+recall contributes an F1 of 0 (the sklearn
    zero_division=0 convention).  NaN on empty input.
    """
    if average != "macro":
        raise ValueError(f"unsupported average {average!r}; only 'macro'")
    pred, target = np.asarray(pred), np.asarray(target)
    if pred.size == 0:
        return float("nan")
    scores = []
    for label in np.unique(np.concatenate([pred, target])):
        tp = float(((pred == label) & (target == label)).sum())
        fp = float(((pred == label) & (target != label)).sum())
        fn = float(((pred != label) & (target == label)).sum())
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(scores))


def evaluate_all(pred: np.ndarray, target: np.ndarray,
                 mask: Optional[np.ndarray] = None) -> Dict[str, float]:
    """MSE/MAE bundle in the shape the experiment tables expect."""
    return {"mse": mse(pred, target, mask), "mae": mae(pred, target, mask)}
