"""Evaluation metrics: MSE and MAE (the paper's two), plus common extras."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def mse(pred: np.ndarray, target: np.ndarray,
        mask: Optional[np.ndarray] = None) -> float:
    """Mean squared error; with ``mask``, only True positions count."""
    pred, target = np.asarray(pred), np.asarray(target)
    err = (pred - target) ** 2
    if mask is not None:
        sel = err[np.asarray(mask, dtype=bool)]
        return float(sel.mean()) if sel.size else 0.0
    return float(err.mean())


def mae(pred: np.ndarray, target: np.ndarray,
        mask: Optional[np.ndarray] = None) -> float:
    """Mean absolute error; with ``mask``, only True positions count."""
    pred, target = np.asarray(pred), np.asarray(target)
    err = np.abs(pred - target)
    if mask is not None:
        sel = err[np.asarray(mask, dtype=bool)]
        return float(sel.mean()) if sel.size else 0.0
    return float(err.mean())


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    return float(np.sqrt(mse(pred, target)))


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error (guarded against zero targets)."""
    pred, target = np.asarray(pred), np.asarray(target)
    return float(np.mean(np.abs((pred - target) / (np.abs(target) + eps))))


def evaluate_all(pred: np.ndarray, target: np.ndarray,
                 mask: Optional[np.ndarray] = None) -> Dict[str, float]:
    """MSE/MAE bundle in the shape the experiment tables expect."""
    return {"mse": mse(pred, target, mask), "mae": mae(pred, target, mask)}
