"""First-class task registry: one ``TaskSpec`` per task, threaded everywhere.

The paper positions TS3Net as *task-general* — forecasting, imputation,
classification, and anomaly detection over the same triple decomposition.
This module makes that claim structural: every task declares, in a single
frozen :class:`TaskSpec`,

* **data** — how its windows/loaders are built from a dataset
  (``make_config`` + ``loaders``, plus ``load_data`` for tasks that do not
  consume a :class:`~repro.data.dataset.SplitData` split);
* **training** — the ``step_fn`` the shared :class:`~repro.tasks.trainer.
  Trainer` consumes (eager and compiled — compiled trace keys carry the
  task name);
* **evaluation** — the metric bundle reported on the test split
  (``evaluate`` + ``metric_names``);
* **checkpoints** — the metadata contract a ``repro train --save``
  checkpoint must carry (``required_metadata``/``checkpoint_extra``) and
  how to ``rebuild`` the architecture from it (used by ``repro serve``,
  the per-task inference subcommands, and the serving ModelRegistry);
* **serving** — the request/response schema of its ``POST /v1/<task>``
  endpoint and the micro-batching *determinism policy* its models run
  under (:class:`ServingContract`), preserving the bit-identical
  batched-vs-single-forward guarantee for every task;
* **CLI** — the name of its offline inference subcommand and the flags it
  adds, so ``repro --help`` is derived from the registry instead of
  hardcoded lists.

Every consumer (``data`` → ``trainer`` → ``experiments`` grid →
``nn.serialization`` → ``serving`` → ``cli``) dispatches through
:func:`get_task`, so adding a model family or a task is one registry
entry.  ``scripts/lint_ops.py`` enforces completeness: a spec missing a
loader factory, step function, metrics, or serving batch policy fails the
lint (run in tests and CI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from .trainer import FitResult, TrainConfig, Trainer

#: Architectures verified to be pure per-sample maps (stacked forwards are
#: bit-identical to per-window forwards for any grouping by shape/dtype).
STACK_SAFE_CLASSES = frozenset({
    "DLinear", "LightTS", "PatchTST", "FEDformer", "Informer",
    "TSDCNN", "TSDTrans",
})


def resolve_batch_policy(model) -> str:
    """Classify how the micro-batcher may group windows for ``model``.

    * ``"stack"``     — the forward pass is a pure per-sample map; any
      windows of the same shape/dtype may share a stacked forward;
    * ``"signature"`` — the model couples samples through data-dependent
      selection but exposes ``batch_signature(window)``; only windows with
      equal signatures may be stacked;
    * ``"solo"``      — cross-sample coupling with no groupable signature;
      every window runs in its own forward.  Unknown architectures default
      here, so serving a new model can never silently break the
      determinism guarantee.
    """
    signature = getattr(model, "batch_signature", None)
    if callable(signature):
        return "signature"
    if type(model).__name__ in STACK_SAFE_CLASSES:
        return "stack"
    return "solo"


class UnknownTaskError(KeyError):
    """Requested task name is not registered; the message names known tasks."""

    def __init__(self, name: str, known: Tuple[str, ...]):
        super().__init__(name)
        self.task = name
        self.known = known

    def __str__(self) -> str:
        return (f"unknown task {self.task!r}; known tasks: "
                f"{', '.join(self.known)}")


@dataclass(frozen=True)
class ServingContract:
    """How a task is exposed over HTTP and batched deterministically.

    ``batch_policy(model)`` classifies how the MicroBatcher may group this
    task's windows (``"stack"`` / ``"signature"`` / ``"solo"`` — see
    ``repro.serving.registry``); the batched model outputs are always
    bit-identical to ``single_forward``, and ``postprocess`` is a pure
    per-row function applied after the batch resolves, so the end-to-end
    response inherits the determinism guarantee.
    """

    singular: str                 # JSON key for a single-window response
    plural: str                   # JSON key for the "windows" batch response
    description: str              # one-liner for endpoint listings
    batch_policy: Callable[[Any], str]
    # (entry, row, window, payload) -> JSON-safe value for one window
    postprocess: Callable[[Any, Any, Any, Dict], Any]
    # (entry) -> extra top-level response fields (e.g. {"pred_len": ...})
    body_extra: Callable[[Any], Dict[str, Any]]


@dataclass(frozen=True)
class TaskSpec:
    """Everything one task declares; see the module docstring for the map."""

    name: str
    summary: str
    # -- data ----------------------------------------------------------
    setting_name: str             # the task's knob ("pred_len", ...)
    setting_arg: str              # CLI attribute carrying the knob
    default_setting: Any
    needs_split: bool             # True: trains on a SplitData split
    # (seq_len, setting, *, batch_size, max_train_batches,
    #  max_eval_batches, seed) -> task config dataclass
    make_config: Callable[..., Any]
    # (dataset, n_steps, seed, config) -> data; only for needs_split=False
    load_data: Optional[Callable[..., Any]]
    channels: Callable[[Any], int]          # data -> c_in
    loaders: Callable[[Any, Any], tuple]    # (data, config) -> (train, val, test)
    # -- training ------------------------------------------------------
    step: Callable[[Any, Any], Callable]    # (model, config) -> StepFn
    # (trainer, test_loader, model, config, data) -> {metric: value}
    evaluate: Callable[..., Dict[str, float]]
    metric_names: Tuple[str, ...]
    # -- model construction / checkpoints ------------------------------
    model_task: str               # task string handed to baselines.build_model
    # (model_name, config, c_in, preset, **overrides) -> Module
    build: Callable[..., Any]
    # (meta) -> Module with matching architecture (weights not loaded)
    rebuild: Callable[[Dict[str, Any]], Any]
    out_len: Callable[[Any], int]           # config -> checkpoint pred_len
    # (model, config) -> task-specific checkpoint metadata
    checkpoint_extra: Callable[[Any, Any], Dict[str, Any]]
    required_metadata: Tuple[str, ...] = ()
    # -- serving -------------------------------------------------------
    serving: ServingContract = None  # completeness enforced by lint_ops
    # -- CLI -----------------------------------------------------------
    infer_command: str = ""
    infer_help: str = ""
    add_infer_args: Callable[[Any], None] = None
    # (args, meta, model) -> report text (the CLI prints it)
    run_infer: Callable[..., str] = None
    format_result: Callable[[FitResult], str] = None


_REGISTRY: Dict[str, TaskSpec] = {}
_LOADED = False


def register_task(spec: TaskSpec) -> TaskSpec:
    """Register ``spec`` under its name (idempotent for identical names)."""
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_loaded() -> None:
    """Import the task modules so their module-level specs register."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import anomaly, classification, forecasting, imputation  # noqa: F401


def get_task(name: str) -> TaskSpec:
    """Look up a task by name; raises :class:`UnknownTaskError` otherwise."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTaskError(name, task_names()) from None


def task_names() -> Tuple[str, ...]:
    """Registered task names in registration order."""
    _ensure_loaded()
    return tuple(_REGISTRY)


def task_specs() -> Tuple[TaskSpec, ...]:
    """Every registered spec (registration order)."""
    _ensure_loaded()
    return tuple(_REGISTRY.values())


# ---------------------------------------------------------------------------
# The generic driver every task runs through
# ---------------------------------------------------------------------------

def run_task(task, model, data, config,
             train_cfg: Optional[TrainConfig] = None) -> FitResult:
    """Train ``model`` on ``data`` under the task's contract.

    ``task`` is a name or a :class:`TaskSpec`.  Builds the spec's loaders,
    fits through the shared :class:`Trainer` (spans, ``--profile``, and
    ``--compiled`` included — the compiled trace key carries the task
    name), then runs the spec's evaluation.  The result's ``metrics`` dict
    holds the task's metric bundle; ``mse``/``mae`` are filled when the
    task reports them, so existing grid/table consumers keep working.
    """
    spec = task if isinstance(task, TaskSpec) else get_task(task)
    train_loader, val_loader, test_loader = spec.loaders(data, config)
    trainer = Trainer(model, train_cfg)
    result = trainer.fit(train_loader, val_loader, spec.step(model, config),
                         task=spec.name)
    metrics = spec.evaluate(trainer, test_loader, model, config, data)
    result.metrics = dict(metrics)
    result.mse = metrics.get("mse", float("nan"))
    result.mae = metrics.get("mae", float("nan"))
    result.eval_seconds += trainer.last_eval_seconds
    return result


# ---------------------------------------------------------------------------
# Checkpoint metadata helpers shared by serving and the CLI
# ---------------------------------------------------------------------------

def checkpoint_overrides(meta: Dict[str, Any],
                         source: str = "checkpoint") -> Dict[str, Any]:
    """The validated model-kwarg overrides carried by checkpoint metadata."""
    overrides = meta.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise ValueError(
            f"{source} metadata 'overrides' must be a dict of model "
            f"kwargs, got {type(overrides).__name__}")
    return overrides


def rebuild_from_metadata(meta: Dict[str, Any]):
    """Reconstruct the architecture a checkpoint describes (no weights).

    Dispatches on ``meta["task"]`` through the registry — the one door
    every checkpoint consumer (``repro serve``, the per-task inference
    subcommands, the serving ModelRegistry) rebuilds models through.
    """
    return get_task(meta["task"]).rebuild(meta)
