"""Imputation task driver (Table V protocol).

Length-96 windows have a random fraction of (time, channel) points masked
to zero; the model reconstructs the full window and the loss/metrics are
computed on the masked positions only — the TimesNet imputation protocol
the paper follows.  The full contract is declared as the ``imputation``
:class:`~repro.tasks.registry.TaskSpec` at the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autodiff import Tensor, masked_mse_loss, no_grad
from ..data.dataset import DataLoader, ImputationWindows, SplitData, load_dataset
from ..data.masking import mask_batch
from ..nn.module import Module
from .metrics import mae as mae_metric
from .metrics import mse as mse_metric
from .registry import (
    ServingContract, TaskSpec, checkpoint_overrides, register_task,
    resolve_batch_policy, run_task,
)
from .trainer import FitResult, TrainConfig, Trainer


@dataclass
class ImputationTask:
    """One imputation configuration: window length + mask ratio."""

    seq_len: int = 96
    mask_ratio: float = 0.25
    batch_size: int = 16
    stride: int = 1
    max_train_batches: Optional[int] = None
    max_eval_batches: Optional[int] = None
    seed: int = 0

    def loaders(self, split: SplitData):
        # Batches are consumed within each step, so the loaders can reuse
        # preallocated batch buffers (see DataLoader).
        train = DataLoader(
            ImputationWindows(split.train, self.seq_len, self.stride),
            batch_size=self.batch_size, shuffle=True, seed=self.seed,
            max_batches=self.max_train_batches, reuse_buffers=True)
        val = DataLoader(
            ImputationWindows(split.val, self.seq_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        test = DataLoader(
            ImputationWindows(split.test, self.seq_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        return train, val, test


def imputation_step(model: Module, mask_ratio: float, seed: int = 0):
    """Step function masking each batch and scoring masked positions only."""
    rng = np.random.default_rng(seed)

    def step(batch):
        window = batch
        masked, mask = mask_batch(window, mask_ratio, rng=rng, fill="mean")
        pred = model(Tensor(masked))
        loss = masked_mse_loss(pred, window, mask)
        return loss, pred.data, window, mask

    return step


def run_imputation(model: Module, split: SplitData, task: ImputationTask,
                   train_cfg: Optional[TrainConfig] = None) -> FitResult:
    """Train ``model`` to impute and return masked-position MSE/MAE."""
    return run_task(IMPUTATION_SPEC, model, split, task, train_cfg)


# ---------------------------------------------------------------------------
# TaskSpec wiring
# ---------------------------------------------------------------------------

def _make_config(seq_len, setting, *, batch_size=16, max_train_batches=None,
                 max_eval_batches=None, seed=0) -> ImputationTask:
    return ImputationTask(seq_len=seq_len, mask_ratio=float(setting),
                          batch_size=batch_size,
                          max_train_batches=max_train_batches,
                          max_eval_batches=max_eval_batches, seed=seed)


def _evaluate(trainer: Trainer, test_loader, model, config, data):
    # Evaluation uses a fixed seed so every model sees identical masks.
    eval_step = imputation_step(model, config.mask_ratio,
                                seed=10_000 + config.seed)
    mse, mae = trainer.evaluate(test_loader, eval_step)
    return {"mse": mse, "mae": mae}


def _build(model_name, config, c_in, preset="tiny", **overrides):
    from ..baselines.registry import build_model
    return build_model(model_name, seq_len=config.seq_len,
                       pred_len=config.seq_len, c_in=c_in, task="imputation",
                       preset=preset, **overrides)


def _rebuild(meta):
    from ..baselines.registry import build_model
    return build_model(meta["model"], seq_len=meta["seq_len"],
                       pred_len=meta["pred_len"], c_in=meta["c_in"],
                       task="imputation", preset=meta.get("preset", "tiny"),
                       **checkpoint_overrides(meta))


def _add_infer_args(parser) -> None:
    parser.add_argument("--dataset", default=None)
    parser.add_argument("--n-steps", type=int, default=2000)
    parser.add_argument("--mask-ratio", type=float, default=None,
                        help="fraction of points to mask (default: the "
                             "ratio the checkpoint was trained with)")


def _run_infer(args, meta, model) -> str:
    """Mask one test window, reconstruct it, and report masked MSE/MAE."""
    split = load_dataset(args.dataset or meta["dataset"],
                         n_steps=args.n_steps, seed=args.seed)
    ratio = (args.mask_ratio if args.mask_ratio is not None
             else meta.get("mask_ratio", 0.25))
    window = split.test[None, :meta["seq_len"]]
    rng = np.random.default_rng(args.seed)
    masked, mask = mask_batch(window, ratio, rng=rng, fill="mean")
    model.eval()
    with no_grad():
        recon = model(Tensor(masked)).data
    return (f"{meta['model']} imputation on "
            f"{args.dataset or meta['dataset']}: masked {mask.mean():.1%} "
            f"of points\nmasked-position MSE="
            f"{mse_metric(recon, window, mask):.4f} "
            f"MAE={mae_metric(recon, window, mask):.4f}")


def _format_result(result: FitResult) -> str:
    return f"test MSE={result.mse:.4f} MAE={result.mae:.4f}"


IMPUTATION_SPEC = register_task(TaskSpec(
    name="imputation",
    summary="reconstruct randomly masked points of a window (Table V)",
    setting_name="mask_ratio",
    setting_arg="mask_ratio",
    default_setting=0.25,
    needs_split=True,
    make_config=_make_config,
    load_data=None,
    channels=lambda split: split.train.shape[1],
    loaders=lambda split, config: config.loaders(split),
    step=lambda model, config: imputation_step(model, config.mask_ratio,
                                               config.seed),
    evaluate=_evaluate,
    metric_names=("mse", "mae"),
    model_task="imputation",
    build=_build,
    rebuild=_rebuild,
    out_len=lambda config: config.seq_len,
    checkpoint_extra=lambda model, config: {"mask_ratio": config.mask_ratio},
    serving=ServingContract(
        singular="reconstruction",
        plural="reconstructions",
        description="window (seq_len x c_in) -> full reconstruction",
        batch_policy=resolve_batch_policy,
        postprocess=lambda entry, row, window, payload: row.tolist(),
        body_extra=lambda entry: {"seq_len": entry.seq_len},
    ),
    infer_command="impute",
    infer_help="mask and reconstruct a window from a checkpoint",
    add_infer_args=_add_infer_args,
    run_infer=_run_infer,
    format_result=_format_result,
))
