"""Imputation task driver (Table V protocol).

Length-96 windows have a random fraction of (time, channel) points masked
to zero; the model reconstructs the full window and the loss/metrics are
computed on the masked positions only — the TimesNet imputation protocol
the paper follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autodiff import Tensor, masked_mse_loss
from ..data.dataset import DataLoader, ImputationWindows, SplitData
from ..data.masking import mask_batch
from ..nn.module import Module
from .trainer import FitResult, TrainConfig, Trainer


@dataclass
class ImputationTask:
    """One imputation configuration: window length + mask ratio."""

    seq_len: int = 96
    mask_ratio: float = 0.25
    batch_size: int = 16
    stride: int = 1
    max_train_batches: Optional[int] = None
    max_eval_batches: Optional[int] = None
    seed: int = 0

    def loaders(self, split: SplitData):
        # Batches are consumed within each step, so the loaders can reuse
        # preallocated batch buffers (see DataLoader).
        train = DataLoader(
            ImputationWindows(split.train, self.seq_len, self.stride),
            batch_size=self.batch_size, shuffle=True, seed=self.seed,
            max_batches=self.max_train_batches, reuse_buffers=True)
        val = DataLoader(
            ImputationWindows(split.val, self.seq_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        test = DataLoader(
            ImputationWindows(split.test, self.seq_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        return train, val, test


def imputation_step(model: Module, mask_ratio: float, seed: int = 0):
    """Step function masking each batch and scoring masked positions only."""
    rng = np.random.default_rng(seed)

    def step(batch):
        window = batch
        masked, mask = mask_batch(window, mask_ratio, rng=rng, fill="mean")
        pred = model(Tensor(masked))
        loss = masked_mse_loss(pred, window, mask)
        return loss, pred.data, window, mask

    return step


def run_imputation(model: Module, split: SplitData, task: ImputationTask,
                   train_cfg: Optional[TrainConfig] = None) -> FitResult:
    """Train ``model`` to impute and return masked-position MSE/MAE."""
    train_loader, val_loader, test_loader = task.loaders(split)
    trainer = Trainer(model, train_cfg)
    result = trainer.fit(train_loader, val_loader,
                         imputation_step(model, task.mask_ratio, task.seed))
    # Evaluation uses a fixed seed so every model sees identical masks.
    eval_step = imputation_step(model, task.mask_ratio, seed=10_000 + task.seed)
    result.mse, result.mae = trainer.evaluate(test_loader, eval_step)
    result.eval_seconds += trainer.last_eval_seconds
    return result
