"""Long-term forecasting task driver (Table IV protocol).

Given a model that maps a (B, seq_len, C) lookback window to a
(B, pred_len, C) horizon, this module wires up the windowed loaders, MSE
training, and test-set MSE/MAE evaluation on standardised data — the exact
measurement the paper reports.  The full contract (loaders, step, metrics,
checkpoint metadata, serving schema, CLI inference) is declared as the
``forecast`` :class:`~repro.tasks.registry.TaskSpec` at the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autodiff import Tensor, mse_loss, no_grad
from ..data.dataset import DataLoader, ForecastWindows, SplitData, load_dataset
from ..nn.module import Module
from .registry import (
    ServingContract, TaskSpec, checkpoint_overrides, register_task,
    resolve_batch_policy, run_task,
)
from .trainer import FitResult, TrainConfig, Trainer


@dataclass
class ForecastTask:
    """One forecasting configuration: window sizes + loader limits."""

    seq_len: int = 96
    pred_len: int = 96
    batch_size: int = 32
    stride: int = 1
    max_train_batches: Optional[int] = None
    max_eval_batches: Optional[int] = None
    seed: int = 0

    def loaders(self, split: SplitData):
        # Training/eval batches are consumed within each step, so the
        # loaders can reuse preallocated batch buffers (see DataLoader).
        train = DataLoader(
            ForecastWindows(split.train, self.seq_len, self.pred_len, self.stride),
            batch_size=self.batch_size, shuffle=True, seed=self.seed,
            max_batches=self.max_train_batches, reuse_buffers=True)
        val = DataLoader(
            ForecastWindows(split.val, self.seq_len, self.pred_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        test = DataLoader(
            ForecastWindows(split.test, self.seq_len, self.pred_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        return train, val, test


def forecast_step(model: Module):
    """Build the trainer step function for forecasting batches ``(x, y)``."""

    def step(batch):
        x, y = batch
        pred = model(Tensor(x))
        loss = mse_loss(pred, y)
        return loss, pred.data, y, None

    return step


def run_forecast(model: Module, split: SplitData, task: ForecastTask,
                 train_cfg: Optional[TrainConfig] = None) -> FitResult:
    """Train ``model`` on ``split`` and return test MSE/MAE in the result."""
    return run_task(FORECAST_SPEC, model, split, task, train_cfg)


def predict(model: Module, x: np.ndarray) -> np.ndarray:
    """Convenience inference helper: (T, C) or (B, T, C) -> predictions."""
    squeeze = x.ndim == 2
    if squeeze:
        x = x[None]
    model.eval()
    with no_grad():
        out = model(Tensor(np.asarray(x, dtype=float)))
    return out.data[0] if squeeze else out.data


# ---------------------------------------------------------------------------
# TaskSpec wiring
# ---------------------------------------------------------------------------

def _make_config(seq_len, setting, *, batch_size=32, max_train_batches=None,
                 max_eval_batches=None, seed=0) -> ForecastTask:
    return ForecastTask(seq_len=seq_len, pred_len=int(setting),
                        batch_size=batch_size,
                        max_train_batches=max_train_batches,
                        max_eval_batches=max_eval_batches, seed=seed)


def _evaluate(trainer: Trainer, test_loader, model, config, data):
    mse, mae = trainer.evaluate(test_loader, forecast_step(model))
    return {"mse": mse, "mae": mae}


def _build(model_name, config, c_in, preset="tiny", **overrides):
    from ..baselines.registry import build_model
    return build_model(model_name, seq_len=config.seq_len,
                       pred_len=config.pred_len, c_in=c_in, task="forecast",
                       preset=preset, **overrides)


def _rebuild(meta):
    from ..baselines.registry import build_model
    return build_model(meta["model"], seq_len=meta["seq_len"],
                       pred_len=meta["pred_len"], c_in=meta["c_in"],
                       task="forecast", preset=meta.get("preset", "tiny"),
                       **checkpoint_overrides(meta))


def _add_infer_args(parser) -> None:
    parser.add_argument("--dataset", default=None)
    parser.add_argument("--n-steps", type=int, default=2000)


def _run_infer(args, meta, model) -> str:
    """Forecast one test window from a checkpoint; returns an ASCII plot."""
    from ..experiments.plotting import ascii_lineplot
    split = load_dataset(args.dataset or meta["dataset"],
                         n_steps=args.n_steps, seed=args.seed)
    window = split.test[:meta["seq_len"]]
    model.eval()
    with no_grad():
        pred = model(Tensor(window[None])).data[0]
    truth = split.test[meta["seq_len"]:meta["seq_len"] + pred.shape[0], 0]
    header = (f"{meta['model']} forecast on "
              f"{args.dataset or meta['dataset']} (channel 0):")
    return header + "\n" + ascii_lineplot(
        {"GroundTruth": truth, "Prediction": pred[:, 0]})


def _format_result(result: FitResult) -> str:
    return f"test MSE={result.mse:.4f} MAE={result.mae:.4f}"


FORECAST_SPEC = register_task(TaskSpec(
    name="forecast",
    summary="map a lookback window to a pred_len-step horizon (Table IV)",
    setting_name="pred_len",
    setting_arg="pred_len",
    default_setting=24,
    needs_split=True,
    make_config=_make_config,
    load_data=None,
    channels=lambda split: split.train.shape[1],
    loaders=lambda split, config: config.loaders(split),
    step=lambda model, config: forecast_step(model),
    evaluate=_evaluate,
    metric_names=("mse", "mae"),
    model_task="forecast",
    build=_build,
    rebuild=_rebuild,
    out_len=lambda config: config.pred_len,
    checkpoint_extra=lambda model, config: {},
    serving=ServingContract(
        singular="prediction",
        plural="predictions",
        description="window (seq_len x c_in) -> horizon (pred_len x c_in)",
        batch_policy=resolve_batch_policy,
        postprocess=lambda entry, row, window, payload: row.tolist(),
        body_extra=lambda entry: {"pred_len": entry.pred_len},
    ),
    infer_command="forecast",
    infer_help="forecast from a checkpoint",
    add_infer_args=_add_infer_args,
    run_infer=_run_infer,
    format_result=_format_result,
))
