"""Long-term forecasting task driver (Table IV protocol).

Given a model that maps a (B, seq_len, C) lookback window to a
(B, pred_len, C) horizon, this module wires up the windowed loaders, MSE
training, and test-set MSE/MAE evaluation on standardised data — the exact
measurement the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autodiff import Tensor, mse_loss
from ..data.dataset import DataLoader, ForecastWindows, SplitData
from ..nn.module import Module
from .trainer import FitResult, TrainConfig, Trainer


@dataclass
class ForecastTask:
    """One forecasting configuration: window sizes + loader limits."""

    seq_len: int = 96
    pred_len: int = 96
    batch_size: int = 32
    stride: int = 1
    max_train_batches: Optional[int] = None
    max_eval_batches: Optional[int] = None
    seed: int = 0

    def loaders(self, split: SplitData):
        # Training/eval batches are consumed within each step, so the
        # loaders can reuse preallocated batch buffers (see DataLoader).
        train = DataLoader(
            ForecastWindows(split.train, self.seq_len, self.pred_len, self.stride),
            batch_size=self.batch_size, shuffle=True, seed=self.seed,
            max_batches=self.max_train_batches, reuse_buffers=True)
        val = DataLoader(
            ForecastWindows(split.val, self.seq_len, self.pred_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        test = DataLoader(
            ForecastWindows(split.test, self.seq_len, self.pred_len, self.stride),
            batch_size=self.batch_size, max_batches=self.max_eval_batches,
            reuse_buffers=True)
        return train, val, test


def forecast_step(model: Module):
    """Build the trainer step function for forecasting batches ``(x, y)``."""

    def step(batch):
        x, y = batch
        pred = model(Tensor(x))
        loss = mse_loss(pred, y)
        return loss, pred.data, y, None

    return step


def run_forecast(model: Module, split: SplitData, task: ForecastTask,
                 train_cfg: Optional[TrainConfig] = None) -> FitResult:
    """Train ``model`` on ``split`` and return test MSE/MAE in the result."""
    train_loader, val_loader, test_loader = task.loaders(split)
    trainer = Trainer(model, train_cfg)
    step = forecast_step(model)
    result = trainer.fit(train_loader, val_loader, step)
    result.mse, result.mae = trainer.evaluate(test_loader, step)
    result.eval_seconds += trainer.last_eval_seconds
    return result


def predict(model: Module, x: np.ndarray) -> np.ndarray:
    """Convenience inference helper: (T, C) or (B, T, C) -> predictions."""
    from ..autodiff import no_grad
    squeeze = x.ndim == 2
    if squeeze:
        x = x[None]
    model.eval()
    with no_grad():
        out = model(Tensor(np.asarray(x, dtype=float)))
    return out.data[0] if squeeze else out.data
