"""Time-series classification (extension — the paper's "task-general" claim).

The paper's introduction lists classification among TS3Net's downstream
tasks but only evaluates forecasting and imputation. This module supplies
the missing piece on the same substrate:

* a seeded synthetic labeled dataset (UEA-style): each class is a distinct
  mixture of periodicities/waveforms, so classifying requires exactly the
  spectral structure TS3Net encodes;
* :class:`SeriesClassifier` — any backbone exposing ``encode(x)`` (TS3Net
  does) + mean pooling + a linear softmax head;
* a cross-entropy trainer step and accuracy/macro-F1 evaluation, all run
  through the shared :class:`~repro.tasks.trainer.Trainer` and declared as
  the ``classification`` :class:`~repro.tasks.registry.TaskSpec`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..autodiff import Tensor, cross_entropy_loss, no_grad
from ..data.dataset import DataLoader, LabeledWindows
from ..nn import Linear, Module
from .metrics import accuracy as accuracy_metric
from .metrics import f1_score
from .registry import (
    ServingContract, TaskSpec, checkpoint_overrides, register_task,
    resolve_batch_policy, run_task,
)
from .trainer import FitResult, TrainConfig, Trainer


def make_classification_dataset(num_classes: int = 3, samples_per_class: int = 40,
                                seq_len: int = 64, channels: int = 2,
                                noise: float = 0.3, seed: int = 0
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Labeled multivariate series: class k mixes periods (8+4k, 16+4k).

    Returns ``(x, y)`` with x of shape (N, T, C) and integer labels y;
    samples are shuffled.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(seq_len)
    xs, ys = [], []
    for label in range(num_classes):
        p1, p2 = 8 + 4 * label, 16 + 4 * label
        for _ in range(samples_per_class):
            phase = rng.uniform(0, 2 * np.pi)
            base = (np.sin(2 * np.pi * t / p1 + phase)
                    + 0.5 * np.sin(2 * np.pi * t / p2 + 1.3 * phase))
            sample = np.stack([
                base * rng.uniform(0.8, 1.2) + noise * rng.standard_normal(seq_len)
                for _ in range(channels)
            ], axis=1)
            xs.append(sample)
            ys.append(label)
    x = np.stack(xs)
    y = np.asarray(ys)
    order = rng.permutation(len(y))
    return x[order], y[order]


class SeriesClassifier(Module):
    """Backbone ``encode`` -> temporal mean pool -> linear logits."""

    def __init__(self, backbone: Module, d_model: int, num_classes: int):
        super().__init__()
        if not hasattr(backbone, "encode"):
            raise TypeError("backbone must expose an encode(x) method")
        self.backbone = backbone
        self.num_classes = num_classes
        self.d_model = d_model
        self.head = Linear(d_model, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        features = self.backbone.encode(x)        # (B, T, D)
        pooled = features.mean(axis=1)            # (B, D)
        return self.head(pooled)                  # (B, K)

    def predict(self, x: np.ndarray) -> np.ndarray:
        self.eval()
        with no_grad():
            logits = self(Tensor(np.asarray(x, dtype=float)))
        return logits.data.argmax(axis=-1)


def classification_step(model: SeriesClassifier):
    """Step function for labeled batches ``(x, y)`` with cross entropy."""

    def step(batch):
        x, y = batch
        logits = model(Tensor(x))
        loss = cross_entropy_loss(logits, y)
        return loss, logits.data, y, None

    return step


@dataclass
class ClassificationResult:
    accuracy: float
    train_losses: list


@dataclass
class ClassificationTask:
    """One classification configuration: synthetic dataset + split shape."""

    seq_len: int = 64
    num_classes: int = 3
    samples_per_class: int = 40
    channels: int = 2
    noise: float = 0.3
    batch_size: int = 16
    train_fraction: float = 0.7
    val_fraction: float = 0.1
    max_train_batches: Optional[int] = None
    max_eval_batches: Optional[int] = None
    seed: int = 0

    def split(self, data):
        """(x, y) -> three (x, y) slices: train / val / test.

        With ``val_fraction == 0`` the validation slice aliases the test
        slice (the legacy :func:`run_classification` protocol: no held-out
        validation set, accuracy on everything past the train fraction).
        """
        x, y = data
        n_train = int(len(x) * self.train_fraction)
        n_val = int(len(x) * self.val_fraction)
        test = (x[n_train + n_val:], y[n_train + n_val:])
        val = (x[n_train:n_train + n_val], y[n_train:n_train + n_val])
        if n_val == 0:
            val = test
        return (x[:n_train], y[:n_train]), val, test

    def loaders(self, data):
        train, val, test = self.split(data)
        train_loader = DataLoader(
            LabeledWindows(*train), batch_size=self.batch_size, shuffle=True,
            seed=self.seed, max_batches=self.max_train_batches)
        val_loader = DataLoader(
            LabeledWindows(*val), batch_size=self.batch_size,
            max_batches=self.max_eval_batches)
        test_loader = DataLoader(
            LabeledWindows(*test), batch_size=self.batch_size,
            max_batches=self.max_eval_batches)
        return train_loader, val_loader, test_loader


def run_classification(model: SeriesClassifier, x: np.ndarray, y: np.ndarray,
                       epochs: int = 5, batch_size: int = 16, lr: float = 1e-3,
                       train_fraction: float = 0.7,
                       seed: int = 0) -> ClassificationResult:
    """Train on the first ``train_fraction`` of samples, report test accuracy.

    Thin wrapper over the shared Trainer (spans/--profile/--compiled
    included).  Validation reuses the test slice, patience is pinned to the
    epoch budget, and the LR is held constant so the historical fixed-seed
    behaviour of this helper (train on every epoch, evaluate once at the
    end) is preserved.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    config = ClassificationTask(
        seq_len=x.shape[1], num_classes=int(y.max()) + 1,
        channels=x.shape[2], batch_size=batch_size,
        train_fraction=train_fraction, val_fraction=0.0, seed=seed)
    train_cfg = TrainConfig(epochs=epochs, lr=lr, patience=epochs,
                            lr_decay=1.0)
    result = run_task(CLASSIFICATION_SPEC, model, (x, y), config, train_cfg)
    return ClassificationResult(accuracy=result.metrics["accuracy"],
                                train_losses=result.train_losses)


# ---------------------------------------------------------------------------
# TaskSpec wiring
# ---------------------------------------------------------------------------

def _make_config(seq_len, setting, *, batch_size=16, max_train_batches=None,
                 max_eval_batches=None, seed=0) -> ClassificationTask:
    return ClassificationTask(seq_len=seq_len, num_classes=int(setting),
                              batch_size=batch_size,
                              max_train_batches=max_train_batches,
                              max_eval_batches=max_eval_batches, seed=seed)


def _load_data(dataset, n_steps, seed, config):
    # The dataset name is accepted for CLI symmetry but the labeled set is
    # synthetic (UEA-style); n_steps is unused for the same reason.
    return make_classification_dataset(
        num_classes=config.num_classes,
        samples_per_class=config.samples_per_class, seq_len=config.seq_len,
        channels=config.channels, noise=config.noise, seed=seed)


def _evaluate(trainer: Trainer, test_loader, model, config, data):
    start = time.perf_counter()
    preds, targets = [], []
    for batch in test_loader:
        x, y = batch
        preds.append(model.predict(x))
        targets.append(np.asarray(y))
    pred = np.concatenate(preds) if preds else np.empty(0, dtype=int)
    target = np.concatenate(targets) if targets else np.empty(0, dtype=int)
    trainer.last_eval_seconds = time.perf_counter() - start
    return {"accuracy": accuracy_metric(pred, target),
            "f1": f1_score(pred, target)}


def _build(model_name, config, c_in, preset="tiny", **overrides):
    from ..baselines.registry import build_model
    backbone = build_model(model_name, seq_len=config.seq_len,
                           pred_len=config.seq_len, c_in=c_in,
                           task="classification", preset=preset, **overrides)
    return SeriesClassifier(backbone, d_model=backbone.config.d_model,
                            num_classes=config.num_classes)


def _rebuild(meta):
    from ..baselines.registry import build_model
    backbone = build_model(meta["model"], seq_len=meta["seq_len"],
                           pred_len=meta["pred_len"], c_in=meta["c_in"],
                           task="classification",
                           preset=meta.get("preset", "tiny"),
                           **checkpoint_overrides(meta))
    return SeriesClassifier(backbone, d_model=meta["d_model"],
                            num_classes=meta["num_classes"])


def _postprocess(entry, row, window, payload):
    """Logits -> label + per-class logits for one window (pure per-row)."""
    return {"label": int(np.argmax(row)), "logits": row.tolist()}


def _add_infer_args(parser) -> None:
    parser.add_argument("--n-samples", type=int, default=30,
                        help="synthetic samples to classify")


def _run_infer(args, meta, model) -> str:
    """Classify a fresh synthetic batch drawn with the checkpoint's recipe."""
    per_class = max(1, args.n_samples // meta["num_classes"])
    x, y = make_classification_dataset(
        num_classes=meta["num_classes"], samples_per_class=per_class,
        seq_len=meta["seq_len"], channels=meta["c_in"], seed=args.seed)
    pred = model.predict(x)
    acc = accuracy_metric(pred, y)
    f1 = f1_score(pred, y)
    return (f"{meta['model']} classification: {len(y)} samples, "
            f"accuracy={acc:.4f} macro-F1={f1:.4f}")


def _format_result(result: FitResult) -> str:
    return (f"test accuracy={result.metrics['accuracy']:.4f} "
            f"macro-F1={result.metrics['f1']:.4f}")


CLASSIFICATION_SPEC = register_task(TaskSpec(
    name="classification",
    summary="label a window by its periodicity mixture (synthetic UEA-style)",
    setting_name="num_classes",
    setting_arg="num_classes",
    default_setting=3,
    needs_split=False,
    make_config=_make_config,
    load_data=_load_data,
    channels=lambda data: data[0].shape[2],
    loaders=lambda data, config: config.loaders(data),
    step=lambda model, config: classification_step(model),
    evaluate=_evaluate,
    metric_names=("accuracy", "f1"),
    model_task="classification",
    build=_build,
    rebuild=_rebuild,
    out_len=lambda config: config.seq_len,
    checkpoint_extra=lambda model, config: {
        "num_classes": model.num_classes, "d_model": model.d_model},
    required_metadata=("num_classes", "d_model"),
    serving=ServingContract(
        singular="classification",
        plural="classifications",
        description="window (seq_len x c_in) -> {label, logits}",
        batch_policy=resolve_batch_policy,
        postprocess=_postprocess,
        body_extra=lambda entry: {"seq_len": entry.seq_len},
    ),
    infer_command="classify",
    infer_help="classify synthetic series from a checkpoint",
    add_infer_args=_add_infer_args,
    run_infer=_run_infer,
    format_result=_format_result,
))
