"""Time-series classification (extension — the paper's "task-general" claim).

The paper's introduction lists classification among TS3Net's downstream
tasks but only evaluates forecasting and imputation. This module supplies
the missing piece on the same substrate:

* a seeded synthetic labeled dataset (UEA-style): each class is a distinct
  mixture of periodicities/waveforms, so classifying requires exactly the
  spectral structure TS3Net encodes;
* :class:`SeriesClassifier` — any backbone exposing ``encode(x)`` (TS3Net
  does) + mean pooling + a linear softmax head;
* a trainer step using cross entropy, and accuracy evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..autodiff import Tensor, cross_entropy_loss, no_grad
from ..nn import Linear, Module
from ..optim import Adam


def make_classification_dataset(num_classes: int = 3, samples_per_class: int = 40,
                                seq_len: int = 64, channels: int = 2,
                                noise: float = 0.3, seed: int = 0
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Labeled multivariate series: class k mixes periods (8+4k, 16+4k).

    Returns ``(x, y)`` with x of shape (N, T, C) and integer labels y;
    samples are shuffled.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(seq_len)
    xs, ys = [], []
    for label in range(num_classes):
        p1, p2 = 8 + 4 * label, 16 + 4 * label
        for _ in range(samples_per_class):
            phase = rng.uniform(0, 2 * np.pi)
            base = (np.sin(2 * np.pi * t / p1 + phase)
                    + 0.5 * np.sin(2 * np.pi * t / p2 + 1.3 * phase))
            sample = np.stack([
                base * rng.uniform(0.8, 1.2) + noise * rng.standard_normal(seq_len)
                for _ in range(channels)
            ], axis=1)
            xs.append(sample)
            ys.append(label)
    x = np.stack(xs)
    y = np.asarray(ys)
    order = rng.permutation(len(y))
    return x[order], y[order]


class SeriesClassifier(Module):
    """Backbone ``encode`` -> temporal mean pool -> linear logits."""

    def __init__(self, backbone: Module, d_model: int, num_classes: int):
        super().__init__()
        if not hasattr(backbone, "encode"):
            raise TypeError("backbone must expose an encode(x) method")
        self.backbone = backbone
        self.head = Linear(d_model, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        features = self.backbone.encode(x)        # (B, T, D)
        pooled = features.mean(axis=1)            # (B, D)
        return self.head(pooled)                  # (B, K)

    def predict(self, x: np.ndarray) -> np.ndarray:
        self.eval()
        with no_grad():
            logits = self(Tensor(np.asarray(x, dtype=float)))
        return logits.data.argmax(axis=-1)


@dataclass
class ClassificationResult:
    accuracy: float
    train_losses: list


def run_classification(model: SeriesClassifier, x: np.ndarray, y: np.ndarray,
                       epochs: int = 5, batch_size: int = 16, lr: float = 1e-3,
                       train_fraction: float = 0.7,
                       seed: int = 0) -> ClassificationResult:
    """Train on the first ``train_fraction`` of samples, report test accuracy."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    split = int(len(x) * train_fraction)
    x_train, y_train = x[:split], y[:split]
    x_test, y_test = x[split:], y[split:]

    rng = np.random.default_rng(seed)
    opt = Adam(model.parameters(), lr=lr)
    losses = []
    for _ in range(epochs):
        order = rng.permutation(len(x_train))
        epoch_losses = []
        model.train()
        for start in range(0, len(order), batch_size):
            idx = order[start:start + batch_size]
            model.zero_grad()
            logits = model(Tensor(x_train[idx]))
            loss = cross_entropy_loss(logits, y_train[idx])
            loss.backward()
            opt.step()
            epoch_losses.append(float(loss.data))
        losses.append(float(np.mean(epoch_losses)))

    accuracy = float((model.predict(x_test) == y_test).mean())
    return ClassificationResult(accuracy=accuracy, train_losses=losses)
