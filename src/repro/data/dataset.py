"""Windowed dataset pipeline following the TimesNet experimental protocol.

* chronological train/val/test split — 70/10/20 by ratio, or the fixed ETT
  borders style where val/test each take the configured fraction;
* standardisation with statistics fit on the *training* split only;
* sliding windows ``(lookback, horizon)`` for forecasting, fixed-length
  windows for imputation;
* a minimal ``DataLoader`` with seeded shuffling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from .specs import get_spec
from .synthetic import generate


class StandardScaler:
    """Per-channel standardisation fit on the training split."""

    def __init__(self):
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        self.mean = x.mean(axis=0, keepdims=True)
        self.std = x.std(axis=0, keepdims=True)
        self.std = np.where(self.std < 1e-8, 1.0, self.std)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("scaler not fitted")
        return (x - self.mean) / self.std

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("scaler not fitted")
        return x * self.std + self.mean


def chronological_split(n: int, style: str = "ratio") -> Tuple[slice, slice, slice]:
    """Index slices of the train/val/test splits.

    ``ratio`` is the 70/10/20 split used for Electricity/Traffic/Weather/
    Exchange/ILI; ``ett`` mimics the ETT convention of 60/20/20.
    """
    if style == "ett":
        train_end = int(n * 0.6)
        val_end = int(n * 0.8)
    else:
        train_end = int(n * 0.7)
        val_end = int(n * 0.8)
    return slice(0, train_end), slice(train_end, val_end), slice(val_end, n)


@dataclass
class SplitData:
    """Standardised train/val/test arrays plus the fitted scaler."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray
    scaler: StandardScaler
    name: str


def load_dataset(name: str, n_steps: Optional[int] = None,
                 dim: Optional[int] = None, seed: int = 0) -> SplitData:
    """Generate + split + standardise one synthetic benchmark dataset."""
    spec = get_spec(name)
    raw = generate(name, n_steps=n_steps, dim=dim, seed=seed)
    tr, va, te = chronological_split(len(raw), style=spec.split)
    scaler = StandardScaler().fit(raw[tr])
    return SplitData(
        train=scaler.transform(raw[tr]),
        val=scaler.transform(raw[va]),
        test=scaler.transform(raw[te]),
        scaler=scaler, name=name)


class ForecastWindows:
    """Sliding (lookback, horizon) window pairs over one split."""

    def __init__(self, data: np.ndarray, seq_len: int, pred_len: int,
                 stride: int = 1):
        if len(data) < seq_len + pred_len:
            raise ValueError(
                f"split of length {len(data)} too short for "
                f"seq_len={seq_len} + pred_len={pred_len}")
        self.data = np.asarray(data, dtype=float)
        self.seq_len = seq_len
        self.pred_len = pred_len
        self.stride = stride
        # Zero-copy (n_windows, seq_len + pred_len, C) view of every
        # window, so a whole batch gathers with one fancy index instead of
        # a Python loop + stack.
        view = np.lib.stride_tricks.sliding_window_view(
            self.data, seq_len + pred_len, axis=0)
        self._view = view.transpose(0, 2, 1)

    def __len__(self) -> int:
        return (len(self.data) - self.seq_len - self.pred_len) // self.stride + 1

    def __getitem__(self, idx: int) -> Tuple[np.ndarray, np.ndarray]:
        start = idx * self.stride
        x = self.data[start:start + self.seq_len]
        y = self.data[start + self.seq_len:start + self.seq_len + self.pred_len]
        return x, y

    def batch_shape(self, n: int) -> Tuple[int, int, int]:
        return (n, self.seq_len + self.pred_len, self.data.shape[1])

    def gather(self, idx: np.ndarray,
               out: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised batch fetch: ``(x, y)`` views into one gathered block."""
        starts = idx * self.stride if self.stride != 1 else idx
        block = np.take(self._view, starts, axis=0, out=out)
        return block[:, :self.seq_len], block[:, self.seq_len:]


class ImputationWindows:
    """Fixed-length windows for the imputation task (no target horizon)."""

    def __init__(self, data: np.ndarray, seq_len: int, stride: int = 1):
        if len(data) < seq_len:
            raise ValueError("split too short for the requested window")
        self.data = np.asarray(data, dtype=float)
        self.seq_len = seq_len
        self.stride = stride
        view = np.lib.stride_tricks.sliding_window_view(
            self.data, seq_len, axis=0)
        self._view = view.transpose(0, 2, 1)

    def __len__(self) -> int:
        return (len(self.data) - self.seq_len) // self.stride + 1

    def __getitem__(self, idx: int) -> np.ndarray:
        start = idx * self.stride
        return self.data[start:start + self.seq_len]

    def batch_shape(self, n: int) -> Tuple[int, int, int]:
        return (n, self.seq_len, self.data.shape[1])

    def gather(self, idx: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """Vectorised batch fetch of ``len(idx)`` windows."""
        starts = idx * self.stride if self.stride != 1 else idx
        return np.take(self._view, starts, axis=0, out=out)


class LabeledWindows:
    """(sample, label) pairs for classification: x (N, T, C), integer y (N,).

    No ``gather``/``batch_shape`` — the DataLoader's generic path stacks
    items into ``(xs, ys)`` batches, which is plenty for the labeled-set
    sizes the classification task uses.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(
                f"samples and labels disagree: {len(x)} vs {len(y)}")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.x)

    def __getitem__(self, idx: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.x[idx], self.y[idx]


class DataLoader:
    """Batched iteration over a window dataset with optional shuffling.

    Window datasets exposing ``gather``/``batch_shape`` (both shipped
    window classes do) are batched with one vectorised fancy-index per
    batch instead of a per-item Python loop. With ``reuse_buffers=True``
    the loader additionally gathers into a preallocated batch buffer that
    is *reused across iterations* — the trainer hot path, where every
    batch is fully consumed before the next one is requested. Leave it
    off (the default) when collecting batches across iterations.
    """

    def __init__(self, windows, batch_size: int = 32, shuffle: bool = False,
                 seed: int = 0, max_batches: Optional[int] = None,
                 reuse_buffers: bool = False):
        self.windows = windows
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.max_batches = max_batches
        self.reuse_buffers = reuse_buffers
        self._rng = np.random.default_rng(seed)
        self._buffer: Optional[np.ndarray] = None

    def __len__(self) -> int:
        n = -(-len(self.windows) // self.batch_size)
        return min(n, self.max_batches) if self.max_batches else n

    def _gather_fast(self, idx: np.ndarray):
        out = None
        if self.reuse_buffers:
            shape = self.windows.batch_shape(len(idx))
            if self._buffer is None or self._buffer.shape[0] < shape[0]:
                self._buffer = np.empty(
                    self.windows.batch_shape(self.batch_size),
                    dtype=self.windows.data.dtype)
            out = self._buffer[:shape[0]]
        return self.windows.gather(idx, out=out)

    def __iter__(self) -> Iterator:
        order = np.arange(len(self.windows))
        if self.shuffle:
            self._rng.shuffle(order)
        fast = hasattr(self.windows, "gather")
        batches_yielded = 0
        for start in range(0, len(order), self.batch_size):
            if self.max_batches and batches_yielded >= self.max_batches:
                return
            idx = order[start:start + self.batch_size]
            if fast:
                yield self._gather_fast(idx)
            else:
                items = [self.windows[i] for i in idx]
                if isinstance(items[0], tuple):
                    xs = np.stack([it[0] for it in items])
                    ys = np.stack([it[1] for it in items])
                    yield xs, ys
                else:
                    yield np.stack(items)
            batches_yielded += 1
