"""Dataset specifications mirroring Table II of the paper.

Each spec records the real dataset's dimensionality, sampling frequency,
dominant periodicities (in steps), and the paper's (train, val, test) sizes,
plus generator parameters used by :mod:`repro.data.synthetic` to produce a
statistically analogous series offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset family."""

    name: str
    dim: int
    frequency: str                     # human-readable sampling frequency
    info: str                          # domain, as in Table II
    paper_sizes: Tuple[int, int, int]  # (train, val, test) lengths in the paper
    periods: Tuple[int, ...]           # dominant periodicities in steps
    trend_strength: float = 0.3        # relative weight of the trend component
    noise_strength: float = 0.15       # relative weight of observation noise
    fluctuation_strength: float = 0.4  # amplitude-modulation depth (dynamic spectrum)
    heavy_tailed: bool = False         # Exchange-style random-walk dominance
    bursty: bool = False               # ILI-style epidemic bursts
    split: str = "ratio"               # "ratio" (70/10/20) or "ett" fixed borders


SPECS: Dict[str, DatasetSpec] = {
    "ETTm1": DatasetSpec(
        name="ETTm1", dim=7, frequency="15 mins", info="Electricity",
        paper_sizes=(34465, 11521, 11521), periods=(96, 672),
        trend_strength=0.35, split="ett"),
    "ETTm2": DatasetSpec(
        name="ETTm2", dim=7, frequency="15 mins", info="Electricity",
        paper_sizes=(34465, 11521, 11521), periods=(96, 672),
        trend_strength=0.5, fluctuation_strength=0.3, split="ett"),
    "ETTh1": DatasetSpec(
        name="ETTh1", dim=7, frequency="Hourly", info="Electricity",
        paper_sizes=(8545, 2881, 2881), periods=(24, 168),
        trend_strength=0.35, split="ett"),
    "ETTh2": DatasetSpec(
        name="ETTh2", dim=7, frequency="Hourly", info="Electricity",
        paper_sizes=(8545, 2881, 2881), periods=(24, 168),
        trend_strength=0.5, fluctuation_strength=0.3, split="ett"),
    "Electricity": DatasetSpec(
        name="Electricity", dim=321, frequency="Hourly", info="Electricity",
        paper_sizes=(18317, 2633, 5261), periods=(24, 168),
        trend_strength=0.2, noise_strength=0.1),
    "Traffic": DatasetSpec(
        name="Traffic", dim=862, frequency="Hourly", info="Transportation",
        paper_sizes=(12185, 1757, 3509), periods=(24, 168),
        trend_strength=0.1, noise_strength=0.1, fluctuation_strength=0.5),
    "Weather": DatasetSpec(
        name="Weather", dim=21, frequency="10 mins", info="Weather",
        paper_sizes=(36792, 5271, 10540), periods=(144,),
        trend_strength=0.4, fluctuation_strength=0.5),
    "Exchange": DatasetSpec(
        name="Exchange", dim=8, frequency="Daily", info="Exchange rate",
        paper_sizes=(5120, 665, 1422), periods=(),
        trend_strength=1.0, noise_strength=0.3, fluctuation_strength=0.1,
        heavy_tailed=True),
    "ILI": DatasetSpec(
        name="ILI", dim=7, frequency="Weekly", info="Illness",
        paper_sizes=(617, 74, 170), periods=(52,),
        trend_strength=0.2, noise_strength=0.15, fluctuation_strength=0.6,
        bursty=True),
}

# Reduced per-family channel counts used at CI scale: the statistical
# character is per-channel, so a handful of channels exercises the same
# code paths as Electricity's 321 at a fraction of the cost.
TINY_DIMS: Dict[str, int] = {
    "ETTm1": 7, "ETTm2": 7, "ETTh1": 7, "ETTh2": 7,
    "Electricity": 8, "Traffic": 8, "Weather": 7, "Exchange": 8, "ILI": 7,
}

FORECAST_DATASETS = ("ETTm1", "ETTm2", "ETTh1", "ETTh2", "Electricity",
                     "Traffic", "Weather", "Exchange", "ILI")
IMPUTATION_DATASETS = ("ETTm1", "ETTm2", "ETTh1", "ETTh2", "Electricity",
                       "Weather")


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by its Table II name."""
    try:
        return SPECS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(SPECS)}") from None
