"""Noise injection for the robustness analysis (Table VIII).

Per the paper: "the proportion rho of the input data was randomly selected
to add noise following the distribution characteristics of the original
signal" — i.e., selected positions receive additive Gaussian noise scaled
to each channel's own standard deviation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

NOISE_RATIOS = (0.0, 0.01, 0.05, 0.10)


def inject_noise(x: np.ndarray, rho: float,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Add signal-scaled Gaussian noise to a random ``rho`` fraction of points.

    ``x`` is (..., T, C); noise std matches each channel's std so the
    perturbation "follows the distribution characteristics of the original
    signal".
    """
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"noise proportion must be in [0, 1], got {rho}")
    if rho == 0.0:
        return x.copy()
    rng = rng or np.random.default_rng()
    out = x.copy()
    channel_std = x.std(axis=tuple(range(x.ndim - 1)), keepdims=True)
    selected = rng.random(x.shape) < rho
    noise = rng.standard_normal(x.shape) * channel_std
    out[selected] += noise[selected]
    return out
