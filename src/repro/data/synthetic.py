"""Synthetic benchmark series mirroring the paper's datasets.

The execution environment is offline, so the six public datasets of
Table II cannot be downloaded. Each generator below produces a seeded
series with the *structure the paper's analysis depends on* — a long-term
trend, one or more calendar periodicities, and (crucially for TS3Net)
*dynamic spectral fluctuation*: periodic components whose amplitude and
phase drift over time, which is exactly the "fluctuant part" the spectrum
gradient is designed to capture.

The recipe per channel:

``x(t) = trend(t) + sum_j a_j(t) * wave_j(t) + noise(t) [+ bursts(t)]``

* ``trend`` — integrated random walk plus a slow sinusoid (urban-growth
  style drift);
* ``wave_j`` — one waveform per dominant period (sines plus harmonics;
  Traffic gets a sharpened rush-hour profile);
* ``a_j(t)`` — slowly varying random amplitude (an Ornstein-Uhlenbeck
  path), giving the time-varying spectrum;
* Exchange is a pure heavy-tailed random walk (no seasonality), ILI adds
  yearly epidemic bursts of varying intensity.

Channels share the seasonal phase loosely (correlated phases) as real
multivariate sensors do.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from .specs import TINY_DIMS, get_spec

DEFAULT_STEPS = 3000


def _ou_path(n: int, rng: np.random.Generator, theta: float = 0.08,
             sigma: float = 0.25) -> np.ndarray:
    """Ornstein-Uhlenbeck path around 1.0 — a slowly drifting amplitude."""
    path = np.empty(n)
    level = 1.0 + sigma * rng.standard_normal()
    for i in range(n):
        level += theta * (1.0 - level) + sigma * np.sqrt(theta) * rng.standard_normal()
        path[i] = level
    return path


def _smooth_walk(n: int, rng: np.random.Generator, smoothing: int = 200) -> np.ndarray:
    """Integrated noise low-passed into a smooth trend, normalised to unit std."""
    walk = np.cumsum(rng.standard_normal(n))
    kernel = np.ones(smoothing) / smoothing
    padded = np.pad(walk, (smoothing // 2, smoothing - smoothing // 2 - 1),
                    mode="edge")
    smooth = np.convolve(padded, kernel, mode="valid")
    std = smooth.std()
    return smooth / std if std > 0 else smooth


def _seasonal_wave(t: np.ndarray, period: int, phase: float,
                   rng: np.random.Generator, sharp: bool = False) -> np.ndarray:
    """Periodic waveform with harmonics; ``sharp`` gives commute-like peaks."""
    base = np.sin(2 * np.pi * t / period + phase)
    second = 0.4 * np.sin(4 * np.pi * t / period + 1.7 * phase)
    wave = base + second
    if sharp:
        wave = np.sign(wave) * np.abs(wave) ** 0.6
    return wave


def _epidemic_bursts(t: np.ndarray, period: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Yearly epidemic peaks with varying onset and severity (ILI style)."""
    out = np.zeros_like(t, dtype=float)
    n_years = int(np.ceil(len(t) / period)) + 1
    for year in range(n_years):
        onset = year * period + rng.integers(-period // 8, period // 8)
        severity = rng.gamma(shape=2.0, scale=1.0)
        width = period / rng.uniform(6.0, 10.0)
        out += severity * np.exp(-0.5 * ((t - onset) / width) ** 2)
    return out


def generate(name: str, n_steps: Optional[int] = None,
             dim: Optional[int] = None, seed: int = 0) -> np.ndarray:
    """Generate a synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        A Table II dataset name (``ETTh1``, ``Electricity``, ...).
    n_steps:
        Series length; defaults to :data:`DEFAULT_STEPS` (CI scale). Pass
        the spec's ``paper_sizes`` sum for paper scale.
    dim:
        Channel count; defaults to the reduced ``TINY_DIMS`` value.
    seed:
        Seed combined with the dataset name, so each family is deterministic
        but distinct.

    Returns
    -------
    Array of shape ``(n_steps, dim)``.
    """
    spec = get_spec(name)
    n = n_steps or DEFAULT_STEPS
    c = dim or TINY_DIMS[name]
    # zlib.crc32 is stable across processes; Python's hash() is salted per
    # interpreter (PYTHONHASHSEED), which would make each run see different
    # "datasets".
    digest = zlib.crc32(f"{name}:{seed}".encode("utf-8"))
    rng = np.random.default_rng(digest)
    t = np.arange(n, dtype=float)

    data = np.empty((n, c))
    # Loosely correlated channel phases, like co-located sensors.
    shared_phase = rng.uniform(0, 2 * np.pi)
    for ch in range(c):
        trend = spec.trend_strength * (
            _smooth_walk(n, rng) + 0.5 * np.sin(2 * np.pi * t / max(n, 1) + rng.uniform(0, np.pi)))

        seasonal = np.zeros(n)
        for j, period in enumerate(spec.periods):
            phase = shared_phase + rng.normal(scale=0.6)
            weight = 1.0 / (j + 1)
            # Dynamic spectrum: per-component amplitude drifts on a timescale
            # comparable to the period itself, and the phase wanders slowly —
            # the multiplicative, time-varying structure the spectrum
            # gradient targets (and linear extrapolation cannot represent).
            amp = 1.0 + spec.fluctuation_strength * (_ou_path(n, rng) - 1.0) * 3.0
            phase_drift = (spec.fluctuation_strength
                           * _smooth_walk(n, rng, smoothing=max(3 * period, 10)))
            wave = _seasonal_wave(t, period, phase + phase_drift, rng,
                                  sharp=(spec.name == "Traffic"))
            seasonal += weight * amp * wave

        noise = spec.noise_strength * rng.standard_normal(n)
        if spec.heavy_tailed:
            increments = rng.standard_t(df=3, size=n) * 0.05
            series = np.cumsum(increments) + trend * 0.2 + noise * 0.1
        else:
            series = trend + seasonal + noise
        if spec.bursty:
            series = series + _epidemic_bursts(t, spec.periods[0], rng)
        data[:, ch] = series

    return data


def paper_scale_steps(name: str) -> int:
    """Total series length implied by the paper's split sizes."""
    return sum(get_spec(name).paper_sizes)
