"""Random masking for the imputation task (Table V protocol).

The paper "randomly mask[s] the time points with a ratio of
{12.5%, 25%, 37.5%, 50%}": masks are drawn uniformly over (time, channel)
positions, masked inputs are zero-filled, and the loss/metrics are computed
on masked positions only.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

MASK_RATIOS = (0.125, 0.25, 0.375, 0.5)


def random_mask(shape: Tuple[int, ...], ratio: float,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Boolean mask of ``shape`` with ~``ratio`` of entries True (= missing)."""
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"mask ratio must be in [0, 1), got {ratio}")
    rng = rng or np.random.default_rng()
    return rng.random(shape) < ratio


def apply_mask(x: np.ndarray, mask: np.ndarray,
               fill_value: float = 0.0) -> np.ndarray:
    """Zero-fill the masked (missing) positions of ``x``."""
    if mask.shape != x.shape:
        raise ValueError(f"mask shape {mask.shape} != data shape {x.shape}")
    out = x.copy()
    out[mask] = fill_value
    return out


def mask_batch(x: np.ndarray, ratio: float,
               rng: Optional[np.random.Generator] = None,
               fill: str = "zero") -> Tuple[np.ndarray, np.ndarray]:
    """Mask a (B, T, C) batch; returns ``(masked_input, mask)``.

    ``fill`` controls the placeholder written at missing positions:

    * ``"zero"`` — plain zero-fill;
    * ``"mean"`` — each channel's *observed* per-window mean, which avoids
      injecting artificial level shifts into decomposition-based models
      (all models receive the same fill, keeping the comparison fair).
    """
    mask = random_mask(x.shape, ratio, rng=rng)
    if fill == "zero":
        return apply_mask(x, mask), mask
    if fill == "mean":
        observed = np.where(mask, np.nan, x)
        with np.errstate(invalid="ignore"):
            means = np.nanmean(observed, axis=-2, keepdims=True)
        means = np.nan_to_num(means)                     # all-masked channel -> 0
        filled = np.where(mask, np.broadcast_to(means, x.shape), x)
        return filled, mask
    raise ValueError(f"unknown fill strategy {fill!r}")
