"""Shared dataset cache: bounded in-memory LRU + optional on-disk ``.npz``.

Replaces the old unbounded per-process ``functools.lru_cache`` in the
experiment runner. Two layers:

* an in-memory LRU bounded by ``max_items`` (long grids touching many
  (dataset, seed) combinations no longer grow memory without bound);
* an optional on-disk layer writing one ``.npz`` per generated split, so
  worker *processes* of a parallel grid share one generation pass instead
  of re-synthesising identical data per process.

The cache key is the complete generation input — ``(name, n_steps, dim,
seed)``; window sizes and other scale-dependent training config are
deliberately *not* part of the key because they do not change the
generated arrays (they are applied downstream by the window datasets).
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from .dataset import SplitData, StandardScaler, load_dataset

Key = Tuple[str, Optional[int], Optional[int], int]


def _npz_name(key: Key) -> str:
    name, n_steps, dim, seed = key
    return f"{name}-n{n_steps}-d{dim}-s{seed}.npz"


def _to_npz_payload(split: SplitData) -> dict:
    return {
        "train": split.train, "val": split.val, "test": split.test,
        "mean": split.scaler.mean, "std": split.scaler.std,
    }


def _from_npz_payload(payload, name: str) -> SplitData:
    scaler = StandardScaler()
    scaler.mean = np.asarray(payload["mean"])
    scaler.std = np.asarray(payload["std"])
    return SplitData(train=np.asarray(payload["train"]),
                     val=np.asarray(payload["val"]),
                     test=np.asarray(payload["test"]),
                     scaler=scaler, name=name)


class DatasetCache:
    """LRU-bounded split cache with an optional on-disk ``.npz`` layer."""

    def __init__(self, cache_dir: Optional[str] = None, max_items: int = 16):
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        self.max_items = max_items
        self._memory: "OrderedDict[Key, SplitData]" = OrderedDict()
        self._dir: Optional[str] = None
        self.hits = 0
        self.misses = 0
        if cache_dir:
            self.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Optional[str]:
        return self._dir

    def set_cache_dir(self, cache_dir: Optional[str]) -> None:
        """Point the on-disk layer somewhere (``None`` disables it)."""
        if cache_dir is None:
            self._dir = None
            return
        self._dir = os.path.abspath(cache_dir)
        os.makedirs(self._dir, exist_ok=True)

    # ------------------------------------------------------------------
    def load(self, name: str, n_steps: Optional[int] = None,
             dim: Optional[int] = None, seed: int = 0) -> SplitData:
        key: Key = (name, n_steps, dim, seed)
        split = self._memory.get(key)
        if split is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return split

        split = self._load_disk(key)
        if split is None:
            self.misses += 1
            split = load_dataset(name, n_steps=n_steps, dim=dim, seed=seed)
            self._store_disk(key, split)
        else:
            self.hits += 1

        self._memory[key] = split
        while len(self._memory) > self.max_items:
            self._memory.popitem(last=False)
        return split

    def _load_disk(self, key: Key) -> Optional[SplitData]:
        if self._dir is None:
            return None
        path = os.path.join(self._dir, _npz_name(key))
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as payload:
                return _from_npz_payload(payload, key[0])
        except (OSError, ValueError):
            return None          # torn write == miss; will be regenerated

    def _store_disk(self, key: Key, split: SplitData) -> None:
        if self._dir is None:
            return
        fd, tmp = tempfile.mkstemp(dir=self._dir, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **_to_npz_payload(split))
            os.replace(tmp, os.path.join(self._dir, _npz_name(key)))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory layer (and the ``.npz`` files if ``disk``)."""
        self._memory.clear()
        self.hits = self.misses = 0
        if disk and self._dir is not None:
            for fname in os.listdir(self._dir):
                if fname.endswith(".npz"):
                    os.unlink(os.path.join(self._dir, fname))

    def cache_info(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "in_memory": len(self._memory), "max_items": self.max_items,
                "cache_dir": self._dir}
