"""Datasets: Table II specs, synthetic generators, windowing, masks, noise."""

from .specs import (
    DatasetSpec, FORECAST_DATASETS, IMPUTATION_DATASETS, SPECS, TINY_DIMS,
    get_spec,
)
from .synthetic import DEFAULT_STEPS, generate, paper_scale_steps
from .dataset import (
    DataLoader, ForecastWindows, ImputationWindows, SplitData, StandardScaler,
    chronological_split, load_dataset,
)
from .cache import DatasetCache
from .masking import MASK_RATIOS, apply_mask, mask_batch, random_mask
from .noise import NOISE_RATIOS, inject_noise

__all__ = [
    "DatasetCache",
    "DatasetSpec", "FORECAST_DATASETS", "IMPUTATION_DATASETS", "SPECS",
    "TINY_DIMS", "get_spec", "DEFAULT_STEPS", "generate", "paper_scale_steps",
    "DataLoader", "ForecastWindows", "ImputationWindows", "SplitData",
    "StandardScaler", "chronological_split", "load_dataset",
    "MASK_RATIOS", "apply_mask", "mask_batch", "random_mask",
    "NOISE_RATIOS", "inject_noise",
]
