"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no network and no `wheel` package, so the
PEP 660 editable-wheel path is unavailable; this file keeps `pip install -e .`
working there. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
