"""Quickstart: train TS3Net on a synthetic ETTh1 stand-in and forecast.

Runs in well under a minute on a laptop CPU:

    python examples/quickstart.py
"""

import numpy as np

from repro import TS3Net, TS3NetConfig, set_seed
from repro.data import load_dataset
from repro.experiments.plotting import ascii_lineplot
from repro.tasks import ForecastTask, TrainConfig, predict, run_forecast

SEQ_LEN, PRED_LEN = 48, 24


def main() -> None:
    set_seed(0)

    # 1. Data: a seeded synthetic stand-in for ETTh1 (7 channels, hourly).
    split = load_dataset("ETTh1", n_steps=2000)
    print(f"dataset ETTh1: train={split.train.shape} val={split.val.shape} "
          f"test={split.test.shape}")

    # 2. Model: TS3Net with triple decomposition (small config for CPU).
    model = TS3Net(TS3NetConfig(
        seq_len=SEQ_LEN, pred_len=PRED_LEN, c_in=split.train.shape[1],
        d_model=16, num_blocks=1, num_scales=8, num_branches=2, d_ff=16,
        num_kernels=2))
    print(f"TS3Net parameters: {model.num_parameters():,}")

    # 3. Train with the paper's protocol: Adam + MSE + early stopping.
    task = ForecastTask(seq_len=SEQ_LEN, pred_len=PRED_LEN, batch_size=16,
                        max_train_batches=30, max_eval_batches=10)
    result = run_forecast(model, split, task,
                          TrainConfig(epochs=3, lr=2e-3, verbose=True))
    print(f"test MSE={result.mse:.3f}  MAE={result.mae:.3f} "
          f"({result.epochs_run} epochs, {result.seconds:.0f}s)")

    # 4. Forecast one window and plot it in the terminal.
    window = split.test[:SEQ_LEN + PRED_LEN]
    forecast = predict(model, window[:SEQ_LEN])
    truth = window[SEQ_LEN:, 0]
    print("\nchannel 0, last lookback steps + forecast horizon:")
    print(ascii_lineplot({
        "GroundTruth": np.concatenate([window[SEQ_LEN - PRED_LEN:SEQ_LEN, 0], truth]),
        "Prediction": np.concatenate([window[SEQ_LEN - PRED_LEN:SEQ_LEN, 0],
                                      forecast[:, 0]]),
    }))


if __name__ == "__main__":
    main()
