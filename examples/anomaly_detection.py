"""Anomaly detection with an imputation-trained TS3Net (extension).

Trains TS3Net to reconstruct masked windows on clean data, then scores a
contaminated test series by reconstruction residual — spikes stand out.

    python examples/anomaly_detection.py
"""

import numpy as np

from repro import TS3Net, TS3NetConfig, set_seed
from repro.data import load_dataset
from repro.experiments.plotting import ascii_lineplot
from repro.tasks import (
    ImputationTask, TrainConfig, detect_anomalies, run_imputation,
)

SEQ_LEN = 48


def main() -> None:
    set_seed(0)
    split = load_dataset("ETTh1", n_steps=2000)

    model = TS3Net(TS3NetConfig(
        seq_len=SEQ_LEN, pred_len=SEQ_LEN, c_in=split.train.shape[1],
        d_model=16, num_blocks=1, num_scales=8, d_ff=16, num_kernels=2,
        task="imputation"))
    result = run_imputation(
        model, split,
        ImputationTask(seq_len=SEQ_LEN, mask_ratio=0.25, batch_size=16,
                       max_train_batches=25, max_eval_batches=8),
        TrainConfig(epochs=2, lr=2e-3))
    print(f"imputation training done (masked MSE={result.mse:.3f})")

    # Contaminate the test series with three spike anomalies.
    contaminated = split.test.copy()
    spikes = [60, 180, 300]
    for s in spikes:
        contaminated[s:s + 2] += 6.0

    detection = detect_anomalies(model, contaminated, seq_len=SEQ_LEN,
                                 anomaly_ratio=0.02, stride=SEQ_LEN // 2)
    flagged = np.where(detection.detections)[0]
    print(f"\nplanted spikes at {spikes}; "
          f"flagged {len(flagged)} points: {flagged[:20].tolist()}")
    hits = sum(any(abs(f - s) <= 2 for f in flagged) for s in spikes)
    print(f"spikes caught: {hits}/{len(spikes)}")

    print("\nresidual score along the series (channel-mean):")
    print(ascii_lineplot({"score": detection.scores}, height=8))


if __name__ == "__main__":
    main()
