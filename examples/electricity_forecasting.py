"""Electricity load forecasting: TS3Net vs. three baselines.

The workload the paper's introduction motivates: electricity consumption
with daily/weekly periodicity, a drifting trend, and dynamic fluctuation.
Trains TS3Net, PatchTST, MICN, and DLinear under an identical protocol and
prints a Table IV-style comparison.

    python examples/electricity_forecasting.py
"""

from repro import set_seed
from repro.baselines import build_model
from repro.data import load_dataset
from repro.experiments.results import ResultTable
from repro.tasks import ForecastTask, TrainConfig, run_forecast

SEQ_LEN, PRED_LEN = 48, 24
MODELS = ("TS3Net", "PatchTST", "MICN", "DLinear")


def main() -> None:
    split = load_dataset("Electricity", n_steps=2500)
    task = ForecastTask(seq_len=SEQ_LEN, pred_len=PRED_LEN, batch_size=16,
                        max_train_batches=40, max_eval_batches=12)
    table = ResultTable("Electricity forecasting (synthetic stand-in)")

    for name in MODELS:
        set_seed(0)
        model = build_model(name, seq_len=SEQ_LEN, pred_len=PRED_LEN,
                            c_in=split.train.shape[1], preset="tiny")
        result = run_forecast(model, split, task,
                              TrainConfig(epochs=3, lr=2e-3))
        table.add("Electricity", PRED_LEN, name, result.as_row())
        print(f"{name:10s} mse={result.mse:.3f} mae={result.mae:.3f} "
              f"({result.seconds:.0f}s)")

    print()
    print(table.render())


if __name__ == "__main__":
    main()
