"""Missing-data imputation with TS3Net on the Weather stand-in.

Randomly masks 25% of the points in length-48 windows (the Table V
protocol), trains TS3Net to reconstruct them, and shows one imputed
window against the ground truth.

    python examples/imputation_demo.py
"""

import numpy as np

from repro import TS3Net, TS3NetConfig, Tensor, no_grad, set_seed
from repro.data import load_dataset, mask_batch
from repro.experiments.plotting import ascii_lineplot
from repro.tasks import ImputationTask, TrainConfig, run_imputation

SEQ_LEN = 48
MASK_RATIO = 0.25


def main() -> None:
    set_seed(0)
    split = load_dataset("Weather", n_steps=2000)

    model = TS3Net(TS3NetConfig(
        seq_len=SEQ_LEN, pred_len=SEQ_LEN, c_in=split.train.shape[1],
        d_model=16, num_blocks=1, num_scales=8, num_branches=2, d_ff=16,
        num_kernels=2, task="imputation"))

    task = ImputationTask(seq_len=SEQ_LEN, mask_ratio=MASK_RATIO,
                          batch_size=16, max_train_batches=30,
                          max_eval_batches=10)
    result = run_imputation(model, split, task, TrainConfig(epochs=3, lr=2e-3))
    print(f"masked-position test MSE={result.mse:.4f}  MAE={result.mae:.4f}")

    # Impute one window and visualise channel 0.
    window = split.test[None, :SEQ_LEN]
    masked, mask = mask_batch(window, MASK_RATIO,
                              rng=np.random.default_rng(7), fill="mean")
    model.eval()
    with no_grad():
        recon = model(Tensor(masked)).data

    ch = 0
    print(f"\nwindow imputation, channel {ch} "
          f"({mask[0, :, ch].sum()} of {SEQ_LEN} points missing):")
    print(ascii_lineplot({
        "GroundTruth": window[0, :, ch],
        "Reconstruction": recon[0, :, ch],
    }))
    missing = mask[0, :, ch]
    if missing.any():
        err = np.abs(recon[0, missing, ch] - window[0, missing, ch]).mean()
        print(f"mean absolute error on this window's missing points: {err:.3f}")


if __name__ == "__main__":
    main()
