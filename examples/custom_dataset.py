"""Bring-your-own-data: forecast an arbitrary NumPy array with TS3Net.

Shows the full adoption path for a downstream user: wrap a (N, C) array
in the windowing pipeline, train, and forecast — no synthetic-dataset
machinery required.

    python examples/custom_dataset.py
"""

import numpy as np

from repro import TS3Net, TS3NetConfig, set_seed
from repro.data import (
    DataLoader, ForecastWindows, SplitData, StandardScaler,
    chronological_split,
)
from repro.tasks import ForecastTask, TrainConfig, predict, run_forecast

SEQ_LEN, PRED_LEN = 48, 16


def my_measurements(n: int = 1500) -> np.ndarray:
    """Stand-in for the user's own data: 3 correlated sensor channels."""
    rng = np.random.default_rng(99)
    t = np.arange(n)
    daily = np.sin(2 * np.pi * t / 24)
    drift = np.cumsum(rng.standard_normal(n)) * 0.02
    channels = [
        2.0 * daily + drift,
        -1.0 * daily + 0.5 * np.sin(2 * np.pi * t / 12) + drift,
        0.3 * drift + 0.4 * rng.standard_normal(n),
    ]
    return np.stack(channels, axis=1)


def main() -> None:
    set_seed(0)
    raw = my_measurements()

    # 1. Split chronologically and standardise with train statistics only.
    tr, va, te = chronological_split(len(raw))
    scaler = StandardScaler().fit(raw[tr])
    split = SplitData(train=scaler.transform(raw[tr]),
                      val=scaler.transform(raw[va]),
                      test=scaler.transform(raw[te]),
                      scaler=scaler, name="my-sensors")

    # 2. Train TS3Net.
    model = TS3Net(TS3NetConfig(
        seq_len=SEQ_LEN, pred_len=PRED_LEN, c_in=raw.shape[1],
        d_model=16, num_blocks=1, num_scales=8, d_ff=16, num_kernels=2))
    task = ForecastTask(seq_len=SEQ_LEN, pred_len=PRED_LEN, batch_size=16,
                        max_train_batches=30, max_eval_batches=10)
    result = run_forecast(model, split, task, TrainConfig(epochs=3, lr=2e-3))
    print(f"test MSE={result.mse:.3f} MAE={result.mae:.3f}")

    # 3. Forecast the next PRED_LEN steps after the data ends, back in the
    #    original units.
    last_window = split.test[-SEQ_LEN:]
    forecast_std = predict(model, last_window)
    forecast = scaler.inverse_transform(forecast_std)
    print(f"\nnext {PRED_LEN} steps, original units (channel 0):")
    print(np.array2string(forecast[:, 0], precision=2))

    # 4. The windowing pipeline is reusable on its own, too.
    loader = DataLoader(ForecastWindows(split.train, SEQ_LEN, PRED_LEN),
                        batch_size=8, shuffle=True)
    x, y = next(iter(loader))
    print(f"\nreusable loader batch: x{x.shape} -> y{y.shape}")


if __name__ == "__main__":
    main()
