"""Visualise the triple decomposition (the paper's Fig. 1 / Fig. 5).

Decomposes an amplitude-modulated multi-periodic series into its trend,
regular, and fluctuant parts and renders the temporal-frequency
distribution and the spectrum-gradient map as terminal heat maps.

    python examples/decomposition_visualization.py
"""

import numpy as np

from repro import decompose_array
from repro.experiments.plotting import ascii_heatmap, ascii_lineplot


def make_series(t_len: int = 192) -> np.ndarray:
    """A series with trend + stable periodicity + dynamic spectral bursts."""
    t = np.arange(t_len)
    trend = 0.01 * t + 0.5 * np.sin(2 * np.pi * t / t_len)
    stable = np.sin(2 * np.pi * t / 24)
    # Dynamic part: a faster component whose amplitude surges mid-series —
    # exactly the "fluctuant" behaviour the spectrum gradient targets.
    envelope = np.exp(-0.5 * ((t - t_len / 2) / 20.0) ** 2)
    burst = 1.5 * envelope * np.sin(2 * np.pi * t / 8)
    return trend + stable + burst


def main() -> None:
    x = make_series()
    res = decompose_array(x, num_scales=12)

    print("Original series (trend + stable period-24 + a period-8 burst):")
    print(ascii_lineplot({"x": x}, height=9))

    print("\nTemporal-frequency distribution Amp(WT(seasonal)) — Eq. 7-8:")
    print(ascii_heatmap(res.tf_distribution.data[0, 0], label="TF distribution"))

    print("\nSpectrum gradient Delta_2D — Eq. 9 (the mid-series burst lights up):")
    print(ascii_heatmap(res.fluctuant.data[0, 0], label="Spectrum gradient"))

    print("\nTriple decomposition (detected period "
          f"T_f = {res.period}):")
    print(ascii_lineplot({
        "trend": res.trend.data[0, :, 0],
        "regular": res.regular.data[0, :, 0],
        "fluct": res.delta_1d.data[0, :, 0],
    }, height=11))

    total = (res.trend.data + res.regular.data + res.delta_1d.data)[0, :, 0]
    print(f"\nexact reconstruction check: max |sum(parts) - x| = "
          f"{np.abs(total - x).max():.2e}")


if __name__ == "__main__":
    main()
