"""Time-series classification with TS3Net features (extension).

Demonstrates the task-general API: TS3Net's ``encode`` features + a linear
softmax head classify synthetic multivariate series whose classes differ
only in their spectral mixture.

    python examples/classification_demo.py
"""

import numpy as np

from repro import TS3Net, TS3NetConfig, set_seed
from repro.tasks import (
    SeriesClassifier, make_classification_dataset, run_classification,
)

SEQ_LEN = 48


def main() -> None:
    set_seed(0)
    x, y = make_classification_dataset(num_classes=3, samples_per_class=30,
                                       seq_len=SEQ_LEN, channels=2,
                                       noise=0.25, seed=1)
    print(f"dataset: {x.shape[0]} samples, {len(set(y))} classes, "
          f"window {SEQ_LEN} x {x.shape[2]} channels")

    backbone = TS3Net(TS3NetConfig(
        seq_len=SEQ_LEN, pred_len=8, c_in=x.shape[2], d_model=16,
        num_blocks=1, num_scales=8, num_branches=2, d_ff=16, num_kernels=2))
    clf = SeriesClassifier(backbone, d_model=16, num_classes=3)

    result = run_classification(clf, x, y, epochs=15, batch_size=16, lr=3e-3)
    print(f"training losses: {[f'{l:.3f}' for l in result.train_losses]}")
    print(f"test accuracy: {result.accuracy:.1%} (chance = 33.3%)")

    # Show a few predictions.
    preds = clf.predict(x[-6:])
    print("sample predictions vs truth:",
          list(zip(preds.tolist(), y[-6:].tolist())))


if __name__ == "__main__":
    main()
