#!/usr/bin/env python
"""CI gate for substrate performance regressions.

Diffs a freshly generated ``BENCH_substrate.json`` (see
``benchmarks/bench_substrate.py``) against the committed baseline and exits
non-zero when any tracked timing regresses by more than the threshold
(default 25%).  Typical CI usage::

    PYTHONPATH=src python benchmarks/bench_substrate.py
    python scripts/bench_compare.py

Timings are compared on ``min_s`` (the most noise-robust statistic a
single-run harness produces); cases present on only one side are reported
but never fail the gate, so adding or retiring benchmark cases does not
require lock-step baseline updates.

Besides raw timings, the experiment-grid facts recorded by the bench are
gated when present in the current report:

* ``grid_parallel_matches_serial`` must be true (worker-pool results are
  bit-identical to the serial reference);
* ``grid_warm_over_cold`` (warm result-cache re-run as a fraction of the
  cold run) must stay under ``--warm-threshold`` (default 25%);
* ``tfblock_freed_over_retained`` (peak retained activation bytes over a
  two-step TF-Block run with the default freeing policy, as a fraction of
  the same run under ``retain_graph=True``) must stay under
  ``--free-threshold`` (default 80%) — locking in the graph IR's
  free-after-backward memory win;
* ``serving_batched_speedup`` (sustained micro-batched throughput over the
  ``max_batch_size=1`` configuration, recorded by
  ``scripts/bench_serving.py``) must stay at or above
  ``--serving-speedup-threshold`` (default 3x);
* the pre-fork cluster facts recorded by ``bench_serving.py --cluster``:
  ``cluster_batched_matches_single`` (proxied responses bit-identical to
  ``single_forward``), ``cluster_overload_clean`` + accepted-p99 under
  the deadline (clean shedding), and ``cluster_scaling`` which must stay
  at or above ``--cluster-scaling-threshold`` (default 1.7x) — enforced
  only on hosts whose usable CPU count covers the largest worker count;
* ``trainer_obs_disabled_overhead`` (``Trainer.fit`` with the observability
  layer present but disabled, as a ratio of the uninstrumented fit) must
  stay within ``--obs-overhead-threshold`` (default 2%) — the tracing
  layer's zero-cost-when-disabled contract;
* ``trace_indexed_over_full`` (reading only span/event kinds from a
  rotated multi-segment log, as a fraction of the full scan) must stay
  at or below ``--trace-indexed-threshold`` (default 50%) — the footer
  index must let ``repro trace --analyze`` skip segments, not re-read
  everything — and ``trace_indexed_reads_complete`` must be true;
* ``compiled_forward_speedup`` (graph-building eager forward over the
  compiled replay, paired-ratio protocol at the dispatch-bound shape)
  must stay at or above ``--compiled-speedup-threshold`` (default 1.3x);
* ``compiled_train_step_speedup`` must stay at or above
  ``--compiled-step-speedup-threshold`` (default 1.15x — lower than the
  forward gate because bitwise identity forces the compiled backward
  through the same kernels as eager, capping the end-to-end ratio);
* ``compiled_peak_saved_bytes_ratio`` (compiled/eager peak retained
  activation bytes over an identical profiled fit) must stay at or below
  ``--compiled-peak-bytes-threshold`` (default 1.0 — the buffer-pooled
  replay must never retain more than the eager freeing watermark).

Facts the substrate bench unconditionally records (everything above except
the optional grid and serving sections) are *required*: a report missing
one fails the gate with the key named, instead of silently skipping the
check against a stale or truncated ``BENCH_substrate.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_CURRENT = os.path.join(REPO_ROOT, "BENCH_substrate.json")
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_baseline.json")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check_grid_facts(current: dict, warm_threshold: float) -> int:
    """Gate the engine's correctness/caching facts; 0 = ok, 1 = fail."""
    ver = current.get("verification", {})
    failures = 0
    if "grid_parallel_matches_serial" in ver:
        ok = bool(ver["grid_parallel_matches_serial"])
        print(f"grid: parallel matches serial: {ok}")
        if not ok:
            print("FAIL: parallel grid results diverged from the serial "
                  "reference", file=sys.stderr)
            failures += 1
    if "grid_warm_over_cold" in ver:
        frac = float(ver["grid_warm_over_cold"])
        print(f"grid: warm cache re-run at {frac:.1%} of cold "
              f"(threshold {warm_threshold:.0%})")
        if frac > warm_threshold:
            print(f"FAIL: warm result-cache re-run took {frac:.1%} of the "
                  f"cold run (limit {warm_threshold:.0%})", file=sys.stderr)
            failures += 1
    if "grid_parallel_speedup" in ver:
        print(f"grid: parallel speedup {ver['grid_parallel_speedup']:.2f}x "
              f"with {ver.get('grid_workers', '?')} workers on "
              f"{ver.get('grid_usable_cpus', '?')} usable cpu(s) "
              "(informational; depends on host cores)")
    return 1 if failures else 0


def check_memory_facts(current: dict, free_threshold: float) -> int:
    """Gate the graph IR's activation-freeing memory win; 0 = ok, 1 = fail."""
    ver = current.get("verification", {})
    if "tfblock_freed_over_retained" not in ver:
        return 0
    frac = float(ver["tfblock_freed_over_retained"])
    freed = ver.get("tfblock_peak_saved_bytes_freed", 0)
    retained = ver.get("tfblock_peak_saved_bytes_retained", 0)
    print(f"tfblock: peak saved-activation bytes {freed:,} (freeing) vs "
          f"{retained:,} (retain_graph) = {frac:.1%} "
          f"(threshold {free_threshold:.0%})")
    if frac > free_threshold:
        print(f"FAIL: activation freeing only reached {frac:.1%} of the "
              f"retained peak (limit {free_threshold:.0%}) — the "
              "free-after-backward policy is not releasing saved tensors",
              file=sys.stderr)
        return 1
    return 0


def check_serving_facts(current: dict, speedup_threshold: float) -> int:
    """Gate the micro-batching throughput win; 0 = ok, 1 = fail."""
    ver = current.get("verification", {})
    if "serving_batched_speedup" not in ver:
        return 0
    speedup = float(ver["serving_batched_speedup"])
    print(f"serving: micro-batched {ver.get('serving_batched_rps', 0):.0f} "
          f"req/s vs unbatched {ver.get('serving_unbatched_rps', 0):.0f} "
          f"req/s = {speedup:.2f}x at "
          f"{ver.get('serving_clients', '?')} clients "
          f"(threshold {speedup_threshold:.1f}x, "
          f"batched p95 {ver.get('serving_batched_p95_ms', 0):.1f}ms / "
          f"p99 {ver.get('serving_batched_p99_ms', 0):.1f}ms)")
    if speedup < speedup_threshold:
        print(f"FAIL: micro-batched serving only reached {speedup:.2f}x the "
              f"unbatched throughput (minimum {speedup_threshold:.1f}x) — "
              "dynamic batching is not amortising the forward pass",
              file=sys.stderr)
        return 1
    return 0


def check_cluster_facts(current: dict, scaling_threshold: float) -> int:
    """Gate the pre-fork cluster facts recorded by bench_serving --cluster.

    Machine-independent facts (proxied bit-identity, clean overload
    shedding, accepted-p99 under the deadline) are hard gates.  The
    worker-scaling ratio is only enforced when the host exposes at least
    as many usable CPUs as the largest worker count — on a 1-core CI
    box, 4 workers time-slice one core and the ratio is meaningless
    (same precedent as ``grid_parallel_speedup``).
    """
    ver = current.get("verification", {})
    if "cluster_scaling" not in ver:
        return 0
    failures = 0
    scaling = float(ver["cluster_scaling"])
    workers = int(ver.get("cluster_scaling_workers", 0))
    cpus = int(ver.get("cluster_usable_cpus", 0))
    counts = ver.get("cluster_worker_counts", [])
    rates = ", ".join(
        f"{w}w={ver.get(f'cluster_rps_{w}w', 0):.0f}rps/"
        f"p99 {ver.get(f'cluster_p99_ms_{w}w', 0):.1f}ms" for w in counts)
    enforced = cpus >= workers
    print(f"cluster: {rates}; scaling {scaling:.2f}x at {workers} workers "
          f"on {cpus} usable cpu(s) "
          + (f"(threshold {scaling_threshold:.1f}x)" if enforced
             else "(informational; host has too few cores to scale)"))
    if enforced and scaling < scaling_threshold:
        print(f"FAIL: cluster throughput only scaled {scaling:.2f}x at "
              f"{workers} workers (minimum {scaling_threshold:.1f}x on a "
              f"{cpus}-cpu host) — the pre-fork tier is not adding "
              "capacity", file=sys.stderr)
        failures += 1
    if not ver.get("cluster_batched_matches_single", False):
        print("FAIL: proxied cluster responses diverged from the "
              "single_forward reference — the determinism contract broke "
              "somewhere across the front-end hop or the shared weights",
              file=sys.stderr)
        failures += 1
    if not ver.get("cluster_overload_clean", False):
        print("FAIL: the overload burst produced outcomes other than "
              "200/503-with-Retry-After (or never shed) — load shedding "
              "is not clean", file=sys.stderr)
        failures += 1
    p99 = float(ver.get("cluster_overload_accepted_p99_ms", float("inf")))
    deadline = float(ver.get("cluster_overload_deadline_ms", 0.0))
    print(f"cluster: overload accepted p99 {p99:.1f}ms "
          f"(deadline {deadline:.0f}ms), shed "
          f"{float(ver.get('cluster_overload_shed_fraction', 0)):.1%} at "
          f"{float(ver.get('cluster_overload_offered_multiple', 0)):.1f}x "
          "capacity")
    if p99 >= deadline:
        print(f"FAIL: accepted requests' p99 ({p99:.1f}ms) exceeded the "
              f"configured deadline ({deadline:.0f}ms) under overload — "
              "admission control is queueing instead of shedding",
              file=sys.stderr)
        failures += 1
    return 1 if failures else 0


def check_obs_facts(current: dict, overhead_threshold: float) -> int:
    """Gate the disabled-tracer overhead on Trainer.fit; 0 = ok, 1 = fail."""
    ver = current.get("verification", {})
    if "trainer_obs_disabled_overhead" not in ver:
        return 0
    ratio = float(ver["trainer_obs_disabled_overhead"])
    enabled = ver.get("trainer_obs_enabled_overhead")
    limit = 1.0 + overhead_threshold
    line = (f"obs: disabled-tracer fit overhead {ratio:.3f}x of "
            f"uninstrumented (limit {limit:.2f}x)")
    if enabled is not None:
        line += f"; enabled {float(enabled):.3f}x (informational)"
    print(line)
    if ratio > limit:
        print(f"FAIL: Trainer.fit with tracing disabled ran at {ratio:.3f}x "
              f"the uninstrumented fit (limit {limit:.2f}x) — the "
              "obs.active() fast path is no longer free", file=sys.stderr)
        return 1
    return 0


# Facts bench_substrate.py records on every run (the grid and serving
# sections are optional and stay gated-when-present).  A missing key here
# means the gate would silently pass against a stale/truncated report.
REQUIRED_FACTS = (
    "tfblock_freed_over_retained",
    "trainer_obs_disabled_overhead",
    "trace_indexed_over_full",
    "compiled_forward_speedup",
    "compiled_train_step_speedup",
    "compiled_peak_saved_bytes_ratio",
)


def check_required_facts(current: dict) -> int:
    """Fail loudly, naming every expected fact missing from the report."""
    ver = current.get("verification", {})
    missing = [key for key in REQUIRED_FACTS if key not in ver]
    for key in missing:
        print(f"FAIL: required benchmark fact '{key}' is missing from the "
              "current report — regenerate BENCH_substrate.json with "
              "benchmarks/bench_substrate.py (stale or truncated report?)",
              file=sys.stderr)
    return 1 if missing else 0


def check_trace_store_facts(current: dict, indexed_threshold: float) -> int:
    """Gate the footer-indexed read win on rotated logs; 0 = ok, 1 = fail."""
    ver = current.get("verification", {})
    if "trace_indexed_over_full" not in ver:
        return 0  # absence is reported by check_required_facts
    failures = 0
    frac = float(ver["trace_indexed_over_full"])
    print(f"trace store: indexed read at {frac:.1%} of the full scan over "
          f"{ver.get('trace_segments', '?')} rotated segments "
          f"(threshold {indexed_threshold:.0%})")
    if frac > indexed_threshold:
        print(f"FAIL: the footer-indexed read took {frac:.1%} of the full "
              f"scan (limit {indexed_threshold:.0%}) — segment skipping is "
              "not happening (footers missing or ignored?)", file=sys.stderr)
        failures += 1
    if not ver.get("trace_indexed_reads_complete", False):
        print("FAIL: the indexed read returned a different span/event set "
              "than the full scan — the footer index is dropping records",
              file=sys.stderr)
        failures += 1
    return 1 if failures else 0


def check_compiled_facts(current: dict, fwd_threshold: float,
                         step_threshold: float, peak_threshold: float) -> int:
    """Gate the graph compiler's speedups and memory plan; 0 = ok, 1 = fail."""
    ver = current.get("verification", {})
    if "compiled_forward_speedup" not in ver:
        return 0  # absence is reported by check_required_facts
    failures = 0
    fwd = float(ver["compiled_forward_speedup"])
    step = float(ver.get("compiled_train_step_speedup", 0.0))
    print(f"compiled: forward {fwd:.2f}x (threshold {fwd_threshold:.2f}x), "
          f"train step {step:.2f}x (threshold {step_threshold:.2f}x); "
          f"batch8 step {ver.get('compiled_train_step_speedup_batch8', 0):.2f}x, "
          f"infer {ver.get('compiled_infer_forward_speedup', 0):.2f}x "
          "(informational); "
          f"{ver.get('compiled_ops_fused_away', '?')} ops fused away, "
          f"{ver.get('compiled_pool_buffers', '?')} pooled buffers")
    if fwd < fwd_threshold:
        print(f"FAIL: compiled forward replay only reached {fwd:.2f}x the "
              f"interpreted forward (minimum {fwd_threshold:.2f}x) — the "
              "compiler is no longer paying for its dispatch",
              file=sys.stderr)
        failures += 1
    if step < step_threshold:
        print(f"FAIL: compiled train step only reached {step:.2f}x eager "
              f"(minimum {step_threshold:.2f}x); note the backward half is "
              "compute-parity by the bitwise contract, so regressions here "
              "are in replay dispatch or the finalised backward program",
              file=sys.stderr)
        failures += 1
    if not ver.get("compiled_validated", False):
        print("FAIL: compiled step was not bitwise-validated (capture "
              "disabled itself or validation never ran)", file=sys.stderr)
        failures += 1
    if "compiled_peak_saved_bytes_ratio" in ver:
        ratio = float(ver["compiled_peak_saved_bytes_ratio"])
        print(f"compiled: peak saved-activation bytes "
              f"{ver.get('compiled_peak_saved_bytes', 0):,} vs eager "
              f"{ver.get('eager_peak_saved_bytes', 0):,} = {ratio:.3f}x "
              f"(threshold {peak_threshold:.2f}x)")
        if ratio > peak_threshold:
            print(f"FAIL: compiled execution retained {ratio:.3f}x the eager "
                  f"peak saved-activation bytes (limit {peak_threshold:.2f}x) "
                  "— the memory plan exceeds the freeing watermark",
                  file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def compare(current: dict, baseline: dict, threshold: float) -> int:
    cur_t = current.get("timings", {})
    base_t = baseline.get("timings", {})
    shared = sorted(set(cur_t) & set(base_t))
    regressions = []
    print(f"{'case':38s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}")
    for name in shared:
        base_ms = base_t[name]["min_s"] * 1e3
        cur_ms = cur_t[name]["min_s"] * 1e3
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name:38s} {base_ms:8.3f}ms {cur_ms:8.3f}ms {ratio:6.2f}x{flag}")
    for name in sorted(set(cur_t) - set(base_t)):
        print(f"{name:38s} {'--':>10s} "
              f"{cur_t[name]['min_s'] * 1e3:8.3f}ms    new")
    for name in sorted(set(base_t) - set(cur_t)):
        print(f"{name:38s} {base_t[name]['min_s'] * 1e3:8.3f}ms "
              f"{'--':>10s}    retired")
    if not shared:
        print("error: no overlapping benchmark cases to compare",
              file=sys.stderr)
        return 2
    if regressions:
        worst = max(regressions, key=lambda item: item[1])
        print(f"\nFAIL: {len(regressions)} case(s) regressed more than "
              f"{threshold:.0%} (worst: {worst[0]} at {worst[1]:.2f}x)",
              file=sys.stderr)
        return 1
    print(f"\nOK: {len(shared)} case(s) within {threshold:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default=DEFAULT_CURRENT,
                        help="freshly generated benchmark report")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed reference report")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown before failing "
                             "(0.25 = 25%%)")
    parser.add_argument("--warm-threshold", type=float, default=0.25,
                        help="max warm/cold grid wall-clock fraction "
                             "(0.25 = warm cache re-run must finish in "
                             "<25%% of the cold run)")
    parser.add_argument("--free-threshold", type=float, default=0.80,
                        help="max freed/retained peak saved-activation "
                             "fraction for the TF-Block profile (0.80 = "
                             "freeing must cut peak bytes by >=20%%)")
    parser.add_argument("--serving-speedup-threshold", type=float, default=3.0,
                        help="minimum micro-batched/unbatched serving "
                             "throughput ratio (3.0 = batching must "
                             "sustain >=3x the unbatched request rate)")
    parser.add_argument("--cluster-scaling-threshold", type=float,
                        default=1.7,
                        help="minimum sustained throughput ratio of the "
                             "largest cluster worker count over 1 worker "
                             "(enforced only on hosts with enough usable "
                             "CPUs; recorded by bench_serving --cluster)")
    parser.add_argument("--obs-overhead-threshold", type=float, default=0.02,
                        help="allowed Trainer.fit slowdown with tracing "
                             "disabled, vs the uninstrumented fit "
                             "(0.02 = 2%%)")
    parser.add_argument("--trace-indexed-threshold", type=float, default=0.5,
                        help="max indexed/full read-time fraction on a "
                             "rotated trace log (0.5 = the footer index "
                             "must at least halve the analysis read)")
    parser.add_argument("--compiled-speedup-threshold", type=float,
                        default=1.3,
                        help="minimum compiled/eager forward speedup at the "
                             "dispatch-bound bench shape (1.3 = replay must "
                             "run the forward >=1.3x faster)")
    parser.add_argument("--compiled-step-speedup-threshold", type=float,
                        default=1.15,
                        help="minimum compiled/eager full-train-step speedup "
                             "(lower than the forward gate: the backward "
                             "half is compute-parity by the bitwise "
                             "contract)")
    parser.add_argument("--compiled-peak-bytes-threshold", type=float,
                        default=1.0,
                        help="max compiled/eager peak saved-activation "
                             "bytes ratio over an identical profiled fit "
                             "(1.0 = the memory plan must not exceed the "
                             "eager freeing watermark)")
    args = parser.parse_args(argv)
    for path in (args.current, args.baseline):
        if not os.path.exists(path):
            print(f"error: {path} not found", file=sys.stderr)
            return 2
    current = load(args.current)
    status = compare(current, load(args.baseline), args.threshold)
    required_status = check_required_facts(current)
    grid_status = check_grid_facts(current, args.warm_threshold)
    memory_status = check_memory_facts(current, args.free_threshold)
    serving_status = check_serving_facts(current,
                                         args.serving_speedup_threshold)
    cluster_status = check_cluster_facts(current,
                                         args.cluster_scaling_threshold)
    obs_status = check_obs_facts(current, args.obs_overhead_threshold)
    trace_status = check_trace_store_facts(current,
                                           args.trace_indexed_threshold)
    compiled_status = check_compiled_facts(
        current, args.compiled_speedup_threshold,
        args.compiled_step_speedup_threshold,
        args.compiled_peak_bytes_threshold)
    return (status or required_status or grid_status or memory_status
            or serving_status or cluster_status or obs_status
            or trace_status or compiled_status)


if __name__ == "__main__":
    raise SystemExit(main())
