#!/usr/bin/env python
"""CI gate for substrate performance regressions.

Diffs a freshly generated ``BENCH_substrate.json`` (see
``benchmarks/bench_substrate.py``) against the committed baseline and exits
non-zero when any tracked timing regresses by more than the threshold
(default 25%).  Typical CI usage::

    PYTHONPATH=src python benchmarks/bench_substrate.py
    python scripts/bench_compare.py

Timings are compared on ``min_s`` (the most noise-robust statistic a
single-run harness produces); cases present on only one side are reported
but never fail the gate, so adding or retiring benchmark cases does not
require lock-step baseline updates.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_CURRENT = os.path.join(REPO_ROOT, "BENCH_substrate.json")
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_baseline.json")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compare(current: dict, baseline: dict, threshold: float) -> int:
    cur_t = current.get("timings", {})
    base_t = baseline.get("timings", {})
    shared = sorted(set(cur_t) & set(base_t))
    regressions = []
    print(f"{'case':38s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}")
    for name in shared:
        base_ms = base_t[name]["min_s"] * 1e3
        cur_ms = cur_t[name]["min_s"] * 1e3
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name:38s} {base_ms:8.3f}ms {cur_ms:8.3f}ms {ratio:6.2f}x{flag}")
    for name in sorted(set(cur_t) - set(base_t)):
        print(f"{name:38s} {'--':>10s} "
              f"{cur_t[name]['min_s'] * 1e3:8.3f}ms    new")
    for name in sorted(set(base_t) - set(cur_t)):
        print(f"{name:38s} {base_t[name]['min_s'] * 1e3:8.3f}ms "
              f"{'--':>10s}    retired")
    if not shared:
        print("error: no overlapping benchmark cases to compare",
              file=sys.stderr)
        return 2
    if regressions:
        worst = max(regressions, key=lambda item: item[1])
        print(f"\nFAIL: {len(regressions)} case(s) regressed more than "
              f"{threshold:.0%} (worst: {worst[0]} at {worst[1]:.2f}x)",
              file=sys.stderr)
        return 1
    print(f"\nOK: {len(shared)} case(s) within {threshold:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default=DEFAULT_CURRENT,
                        help="freshly generated benchmark report")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed reference report")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown before failing "
                             "(0.25 = 25%%)")
    args = parser.parse_args(argv)
    for path in (args.current, args.baseline):
        if not os.path.exists(path):
            print(f"error: {path} not found", file=sys.stderr)
            return 2
    return compare(load(args.current), load(args.baseline), args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
