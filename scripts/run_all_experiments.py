"""Regenerate every paper table and figure at a chosen scale.

Writes rendered tables and JSON payloads under ``benchmarks/results/full/``;
EXPERIMENTS.md is written from these outputs.

    python scripts/run_all_experiments.py --scale tiny
"""

import argparse
import os
import time

from repro.experiments import table2, table4, table5, table6, table7, table8, table9
from repro.experiments.configs import format_table3
from repro.experiments.figures import figure3, figure4, figure5

OUT = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "results", "full")


def emit(name: str, text: str) -> None:
    with open(os.path.join(OUT, f"{name}.txt"), "w") as fh:
        fh.write(text)
    print(f"\n===== {name} =====\n{text}\n", flush=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of {table2..table9, figures}")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per table grid")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache shared by all tables")
    args = parser.parse_args()
    os.makedirs(OUT, exist_ok=True)
    scale = args.scale
    wanted = set(args.only or ["table2", "table3", "table4", "table5",
                               "table6", "table7", "table8", "table9",
                               "figures"])
    grid = dict(workers=args.workers, cache_dir=args.cache_dir)
    t0 = time.time()

    if "table2" in wanted:
        emit("table2", table2.describe(scale))
    if "table3" in wanted:
        emit("table3", format_table3())
    if "table4" in wanted:
        t = table4.run(scale=scale, verbose=True, **grid)
        t.save_json(os.path.join(OUT, "table4.json"))
        emit("table4", t.render())
    if "table5" in wanted:
        t = table5.run(scale=scale, verbose=True, **grid)
        t.save_json(os.path.join(OUT, "table5.json"))
        emit("table5", t.render())
    if "table6" in wanted:
        t = table6.run(scale=scale, verbose=True, **grid)
        t.save_json(os.path.join(OUT, "table6.json"))
        emit("table6", t.render())
    if "table7" in wanted:
        t = table7.run(scale=scale, verbose=True, **grid)
        t.save_json(os.path.join(OUT, "table7.json"))
        emit("table7", t.render())
    if "table8" in wanted:
        t = table8.run(scale=scale, verbose=True, **grid)
        t.save_json(os.path.join(OUT, "table8.json"))
        emit("table8", t.render())
    if "table9" in wanted:
        t = table9.run(scale=scale, verbose=True, **grid)
        t.save_json(os.path.join(OUT, "table9.json"))
        emit("table9", t.render())
    if "figures" in wanted:
        emit("fig3", figure3(scale=scale,
                             csv_path=os.path.join(OUT, "fig3.csv")).render())
        emit("fig4", figure4(scale=scale,
                             csv_path=os.path.join(OUT, "fig4.csv")).render())
        for ds in ("ETTh1", "ETTh2"):
            emit(f"fig5_{ds}", figure5(dataset=ds, scale=scale,
                                       csv_path=os.path.join(OUT, f"fig5_{ds}.csv")).render())

    print(f"\nall done in {time.time() - t0:.0f}s", flush=True)


if __name__ == "__main__":
    main()
