#!/usr/bin/env python
"""Serving load generator: micro-batched vs unbatched throughput + tails.

Boots the real HTTP serving stack (``repro.serving``) in-process on an
ephemeral port, hammers ``POST /v1/forecast`` from ``--clients`` persistent
connections, and measures sustained throughput and client-side latency
percentiles under two configurations:

* **batched**   — ``max_batch_size=--batch-size`` (dynamic micro-batching);
* **unbatched** — ``max_batch_size=1`` (one forward per request).

The results are merged into ``BENCH_substrate.json`` (created if missing)
under a ``serving`` section plus gateable ``verification`` facts;
``scripts/bench_compare.py`` fails CI when ``serving_batched_speedup``
drops below its ``--serving-speedup-threshold`` (default 3x).

``--cluster`` additionally benches the pre-fork cluster
(``repro.serving.cluster``): a 64-client closed loop against 1/2/4
worker processes (throughput + p99 per worker count), a bit-identity
check of proxied responses against ``single_forward``, and an overload
burst against a tiny admission queue (clean shedding: only 200/503
outcomes, accepted p99 under the configured deadline).  The scaling
ratio is gated by ``bench_compare.py`` only on hosts with enough usable
CPUs; the correctness facts are gated everywhere.

Typical usage::

    PYTHONPATH=src python scripts/bench_serving.py [--cluster]
    python scripts/bench_compare.py
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import socket
import statistics
import sys
import threading
import time

import numpy as np

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.baselines import build_model                        # noqa: E402
from repro.nn import save_checkpoint                           # noqa: E402
from repro.serving import (                                    # noqa: E402
    ModelRegistry, ServingConfig, build_server,
)
from repro.utils import set_seed                               # noqa: E402

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_substrate.json")


# A deep, narrow transformer is where dynamic batching pays most on this
# substrate: per-op Python dispatch dominates tiny matmuls, and one stacked
# forward amortises it across the whole batch.
DEFAULT_OVERRIDES = {"num_layers": 8, "d_model": 8, "d_ff": 8, "n_heads": 2}


def make_checkpoint(path: str, model_name: str, seq_len: int, pred_len: int,
                    c_in: int, overrides: dict) -> None:
    set_seed(0)
    model = build_model(model_name, seq_len=seq_len, pred_len=pred_len,
                        c_in=c_in, task="forecast", preset="tiny", **overrides)
    save_checkpoint(model, path, metadata={
        "model": model_name, "dataset": "bench", "task": "forecast",
        "seq_len": seq_len, "pred_len": pred_len, "c_in": c_in,
        "preset": "tiny", "overrides": overrides})


def run_load(host: str, port: int, model: str, bodies: list, clients: int,
             duration: float, warmup: float) -> dict:
    """Closed-loop load: ``clients`` threads with persistent connections."""
    stop = threading.Event()
    recording = threading.Event()
    latencies = [[] for _ in range(clients)]
    errors = [0] * clients

    def connect() -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.connect()
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def worker(idx: int) -> None:
        conn = connect()
        i = idx
        while not stop.is_set():
            body = bodies[i % len(bodies)]
            i += clients
            start = time.perf_counter()
            try:
                conn.request("POST", "/v1/forecast", body,
                             {"Content-Type": "application/json"})
                resp = conn.getresponse()
                resp.read()
                ok = resp.status == 200
            except Exception:
                ok = False
                conn.close()
                conn = connect()
            elapsed = time.perf_counter() - start
            if recording.is_set():
                if ok:
                    latencies[idx].append(elapsed)
                else:
                    errors[idx] += 1
        conn.close()

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    time.sleep(warmup)
    recording.set()
    t0 = time.perf_counter()
    time.sleep(duration)
    recording.clear()
    measured = time.perf_counter() - t0
    stop.set()
    for t in threads:
        t.join(timeout=10)

    lats = sorted(lat for per_client in latencies for lat in per_client)
    count = len(lats)
    if count == 0:
        raise RuntimeError("load generator recorded zero successful requests")

    def pct(q: float) -> float:
        return lats[min(count - 1, int(round(q * (count - 1))))]

    return {
        "requests": count,
        "errors": sum(errors),
        "duration_s": measured,
        "rps": count / measured,
        "p50_ms": pct(0.50) * 1e3,
        "p95_ms": pct(0.95) * 1e3,
        "p99_ms": pct(0.99) * 1e3,
        "mean_ms": statistics.fmean(lats) * 1e3,
    }


def run_overload(host: str, port: int, model: str, bodies: list,
                 clients: int, duration: float, warmup: float,
                 deadline_ms: float) -> dict:
    """Closed-loop burst against a tiny queue: measure shedding hygiene.

    Every outcome must be a 200 (latency recorded), a 503 carrying a
    ``Retry-After`` hint (clean shed), or a 504 (the per-request
    deadline fired on an admitted request — enforced, not hung).
    Transport errors or any other status count as dirty and fail the
    ``cluster_overload_clean`` fact downstream.
    """
    stop = threading.Event()
    recording = threading.Event()
    lock = threading.Lock()
    accepted = []
    counts = {"shed": 0, "expired": 0, "errors": 0, "attempts": 0}

    def worker(idx: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        i = idx
        while not stop.is_set():
            body = bodies[i % len(bodies)]
            i += clients
            start = time.perf_counter()
            try:
                conn.request("POST", "/v1/forecast", body,
                             {"Content-Type": "application/json"})
                resp = conn.getresponse()
                resp.read()
                status = resp.status
                retry_after = resp.getheader("Retry-After")
            except Exception:
                status, retry_after = -1, None
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
            elapsed = time.perf_counter() - start
            if not recording.is_set():
                continue
            with lock:
                counts["attempts"] += 1
                if status == 200:
                    accepted.append(elapsed)
                elif status == 503 and retry_after is not None:
                    counts["shed"] += 1
                elif status == 504:
                    counts["expired"] += 1
                else:
                    counts["errors"] += 1
        conn.close()

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    time.sleep(warmup)
    recording.set()
    t0 = time.perf_counter()
    time.sleep(duration)
    recording.clear()
    measured = time.perf_counter() - t0
    stop.set()
    for t in threads:
        t.join(timeout=10)

    lats = sorted(accepted)
    p99 = (lats[min(len(lats) - 1, int(round(0.99 * (len(lats) - 1))))]
           if lats else float("inf"))
    return {
        "attempts": counts["attempts"],
        "accepted": len(lats),
        "shed": counts["shed"],
        "expired": counts["expired"],
        "errors": counts["errors"],
        "offered_rps": counts["attempts"] / measured,
        "accepted_rps": len(lats) / measured,
        "shed_fraction": counts["shed"] / max(counts["attempts"], 1),
        "accepted_p99_ms": p99 * 1e3,
        "deadline_ms": deadline_ms,
        "clean": (counts["errors"] == 0 and counts["shed"] > 0
                  and len(lats) > 0),
    }


def bench_cluster_config(checkpoint: str, model: str, workers: int,
                         serving, bodies: list, windows: list, clients: int,
                         duration: float, warmup: float,
                         spool_root: str) -> dict:
    """One cluster run at ``workers`` processes: load + bit-identity."""
    from repro.serving import single_forward
    from repro.serving.cluster import ClusterConfig, build_cluster

    config = ClusterConfig(
        workers=workers, host="127.0.0.1", port=0,
        spool_dir=os.path.join(spool_root, f"w{workers}"), serving=serving,
        expect_task="forecast")
    server = build_cluster(config, {model: checkpoint})
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        # Bit-identity through the extra hop: proxied responses must
        # repr-match the local single_forward reference, per worker count.
        reference = ModelRegistry(expect_task="forecast")
        entry = reference.load(model, checkpoint)
        matches = True
        conn = http.client.HTTPConnection(host, port, timeout=30)
        for window in windows:
            body = json.dumps({"model": model,
                               "window": window.tolist()}).encode()
            conn.request("POST", "/v1/forecast", body,
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            if resp.status != 200 or repr(np.asarray(
                    payload["prediction"])) != repr(
                    single_forward(entry, window)):
                matches = False
        conn.close()
        result = run_load(host, port, model, bodies, clients, duration,
                          warmup)
        result["workers"] = workers
        result["matches_single"] = matches
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.drain()
    return result


def bench_cluster_overload(checkpoint: str, model: str, workers: int,
                           bodies: list, clients: int, duration: float,
                           warmup: float, deadline_ms: float,
                           spool_root: str) -> dict:
    """Overload burst: tiny queue, many clients, clean shedding required.

    The per-worker admission queue is deliberately small (6 slots) so the
    closed-loop client herd exerts >10x concurrency pressure on it and
    the 503 + Retry-After path carries most of the load.
    """
    from repro.serving.cluster import ClusterConfig, build_cluster

    queue_size = 6
    serving = ServingConfig(host="127.0.0.1", port=0, max_batch_size=8,
                            max_wait_ms=4.0, queue_size=queue_size,
                            default_timeout_ms=deadline_ms)
    config = ClusterConfig(
        workers=workers, host="127.0.0.1", port=0,
        spool_dir=os.path.join(spool_root, "overload"), serving=serving,
        expect_task="forecast")
    server = build_cluster(config, {model: checkpoint})
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        result = run_overload(host, port, model, bodies, clients, duration,
                              warmup, deadline_ms)
        result["queue_size"] = queue_size
        result["pressure_multiple"] = clients / queue_size
        return result
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.drain()


def bench_config(checkpoint: str, model: str, max_batch_size: int,
                 max_wait_ms: float, bodies: list, clients: int,
                 duration: float, warmup: float) -> dict:
    registry = ModelRegistry(expect_task="forecast")
    registry.load(model, checkpoint)
    config = ServingConfig(host="127.0.0.1", port=0,
                           max_batch_size=max_batch_size,
                           max_wait_ms=max_wait_ms, queue_size=1024,
                           default_timeout_ms=30000.0)
    server = build_server(config, registry)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        result = run_load(host, port, model, bodies, clients, duration, warmup)
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.drain()
    snapshot = server.metrics.snapshot()
    result["mean_batch_size"] = snapshot["mean_batch_size"]
    result["server_batches"] = snapshot["batches_total"]
    return result


def bench_cluster_suite(args, checkpoint: str, bodies: list,
                        tmp: str) -> tuple:
    """Worker-count sweep + overload burst; returns (section, facts)."""
    worker_counts = [int(w) for w in str(args.cluster_workers).split(",")]
    usable_cpus = len(os.sched_getaffinity(0)) \
        if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)
    rng = np.random.default_rng(11)
    check_windows = [rng.standard_normal((args.seq_len, args.c_in)).round(6)
                    for _ in range(6)]
    serving = ServingConfig(host="127.0.0.1", port=0,
                            max_batch_size=args.batch_size,
                            max_wait_ms=args.max_wait_ms, queue_size=1024,
                            default_timeout_ms=30000.0)
    print(f"bench_serving --cluster: {args.cluster_clients} clients, "
          f"worker counts {worker_counts}, {usable_cpus} usable cpu(s)")
    sweep = []
    for workers in worker_counts:
        result = bench_cluster_config(
            checkpoint, args.model, workers, serving, bodies, check_windows,
            args.cluster_clients, args.cluster_duration, args.warmup, tmp)
        sweep.append(result)
        print(f"  {workers} worker(s): {result['rps']:8.1f} req/s  "
              f"p50 {result['p50_ms']:7.2f}ms  p99 {result['p99_ms']:7.2f}ms "
              f"(matches_single={result['matches_single']}, "
              f"{result['errors']} errors)")

    by_workers = {r["workers"]: r for r in sweep}
    base = by_workers[min(by_workers)]
    top = by_workers[max(by_workers)]
    scaling = top["rps"] / base["rps"]
    print(f"  scaling {min(by_workers)}->{max(by_workers)} workers: "
          f"{scaling:.2f}x"
          + ("" if usable_cpus >= max(by_workers)
             else f" (informational: only {usable_cpus} usable cpu(s))"))

    overload = bench_cluster_overload(
        checkpoint, args.model, max(by_workers), bodies,
        args.cluster_clients, args.cluster_duration, args.warmup,
        args.overload_deadline_ms, tmp)
    capacity = top["rps"]
    offered_multiple = overload["offered_rps"] / max(capacity, 1e-9)
    print(f"  overload: {overload['pressure_multiple']:.1f}x queue pressure "
          f"({args.cluster_clients} clients / {overload['queue_size']} "
          f"slots), offered {overload['offered_rps']:.0f} req/s "
          f"({offered_multiple:.1f}x capacity), accepted "
          f"{overload['accepted_rps']:.0f} req/s, shed "
          f"{overload['shed_fraction']:.1%}, {overload['expired']} expired, "
          f"{overload['errors']} errors, "
          f"accepted p99 {overload['accepted_p99_ms']:.1f}ms "
          f"(deadline {overload['deadline_ms']:.0f}ms)")

    section = {
        "clients": args.cluster_clients,
        "worker_counts": worker_counts,
        "usable_cpus": usable_cpus,
        "sweep": sweep,
        "overload": overload,
    }
    facts = {
        "cluster_usable_cpus": usable_cpus,
        "cluster_clients": args.cluster_clients,
        "cluster_worker_counts": worker_counts,
        "cluster_scaling": scaling,
        "cluster_scaling_workers": max(by_workers),
        "cluster_batched_matches_single": all(
            r["matches_single"] for r in sweep),
        "cluster_overload_clean": overload["clean"],
        "cluster_overload_accepted_p99_ms": overload["accepted_p99_ms"],
        "cluster_overload_deadline_ms": overload["deadline_ms"],
        "cluster_overload_shed_fraction": overload["shed_fraction"],
        "cluster_overload_offered_multiple": offered_multiple,
        "cluster_overload_pressure_multiple": overload["pressure_multiple"],
    }
    for r in sweep:
        facts[f"cluster_rps_{r['workers']}w"] = r["rps"]
        facts[f"cluster_p99_ms_{r['workers']}w"] = r["p99_ms"]
    return section, facts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="PatchTST",
                        help="architecture to serve (stack-policy models "
                             "show the pure batching win)")
    parser.add_argument("--overrides", default=None,
                        help="JSON dict of model kwargs baked into the "
                             "checkpoint metadata (default: a deep narrow "
                             "stack where batching pays most)")
    parser.add_argument("--seq-len", type=int, default=48)
    parser.add_argument("--pred-len", type=int, default=24)
    parser.add_argument("--c-in", type=int, default=7)
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent closed-loop client connections")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="max_batch_size of the batched configuration")
    parser.add_argument("--max-wait-ms", type=float, default=8.0,
                        help="batched-config flush window; the unbatched "
                             "config flushes immediately at batch size 1 "
                             "so this only affects batch fill")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="measured seconds per configuration")
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--output", default=OUTPUT_PATH,
                        help="BENCH_substrate.json to merge results into")
    parser.add_argument("--cluster", action="store_true",
                        help="also bench the pre-fork cluster: throughput "
                             "vs worker count, proxied bit-identity, and "
                             "overload shedding hygiene")
    parser.add_argument("--cluster-clients", type=int, default=64,
                        help="closed-loop clients for the cluster runs")
    parser.add_argument("--cluster-workers", default="1,2,4",
                        help="comma-separated worker counts to sweep")
    parser.add_argument("--cluster-duration", type=float, default=3.0,
                        help="measured seconds per cluster worker count")
    parser.add_argument("--overload-deadline-ms", type=float, default=2000.0,
                        help="per-request deadline during the overload "
                             "burst; accepted p99 must stay under it")
    args = parser.parse_args(argv)

    overrides = (DEFAULT_OVERRIDES if args.overrides is None
                 else json.loads(args.overrides))

    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "bench_serving.npz")
        make_checkpoint(checkpoint, args.model, args.seq_len, args.pred_len,
                        args.c_in, overrides)

        rng = np.random.default_rng(7)
        bodies = [
            json.dumps({
                "model": args.model,
                "window": rng.standard_normal(
                    (args.seq_len, args.c_in)).round(6).tolist(),
            }).encode("utf-8")
            for _ in range(64)
        ]

        print(f"bench_serving: {args.model} seq_len={args.seq_len} "
              f"c_in={args.c_in}, {args.clients} clients, "
              f"{args.duration:.0f}s per config")
        batched = bench_config(checkpoint, args.model, args.batch_size,
                               args.max_wait_ms, bodies, args.clients,
                               args.duration, args.warmup)
        unbatched = bench_config(checkpoint, args.model, 1, args.max_wait_ms,
                                 bodies, args.clients, args.duration,
                                 args.warmup)

        cluster_section, cluster_facts = None, {}
        if args.cluster:
            cluster_section, cluster_facts = bench_cluster_suite(
                args, checkpoint, bodies, tmp)

    speedup = batched["rps"] / unbatched["rps"]
    for label, res in (("batched", batched), ("unbatched", unbatched)):
        print(f"  {label:10s} {res['rps']:8.1f} req/s  "
              f"p50 {res['p50_ms']:7.2f}ms  p95 {res['p95_ms']:7.2f}ms  "
              f"p99 {res['p99_ms']:7.2f}ms  "
              f"mean batch {res['mean_batch_size']:.2f} "
              f"({res['errors']} errors)")
    print(f"  micro-batching speedup: {speedup:.2f}x")

    # Merge into the substrate report so bench_compare.py can gate it.
    if os.path.exists(args.output):
        with open(args.output) as fh:
            report = json.load(fh)
    else:
        report = {"meta": {"suite": "bench_substrate"}, "timings": {},
                  "verification": {}}
    report["serving"] = {
        "model": args.model,
        "overrides": overrides,
        "seq_len": args.seq_len,
        "c_in": args.c_in,
        "clients": args.clients,
        "max_batch_size": args.batch_size,
        "max_wait_ms": args.max_wait_ms,
        "batched": batched,
        "unbatched": unbatched,
    }
    if cluster_section is not None:
        report["serving_cluster"] = cluster_section
    report.setdefault("verification", {}).update(cluster_facts)
    report.setdefault("verification", {}).update({
        "serving_batched_speedup": speedup,
        "serving_batched_rps": batched["rps"],
        "serving_unbatched_rps": unbatched["rps"],
        "serving_batched_p95_ms": batched["p95_ms"],
        "serving_batched_p99_ms": batched["p99_ms"],
        "serving_unbatched_p95_ms": unbatched["p95_ms"],
        "serving_mean_batch_size": batched["mean_batch_size"],
        "serving_clients": args.clients,
    })
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"  wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
