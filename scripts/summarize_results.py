"""Fill EXPERIMENTS.md's summary placeholders from the sweep's JSON output.

Reads ``benchmarks/results/full/table{4..9}.json`` and replaces each
``<!-- TABLEx-SUMMARY -->`` marker in EXPERIMENTS.md with a computed
summary (average ranks, win counts, degradation percentages), so the
document always reflects the latest measured run.

    python scripts/summarize_results.py
"""

import json
import os
import re

from repro.experiments.results import ResultTable
from repro.experiments.summaries import (
    degradation_vs, mean_rank, monotone_fraction, ordered_by_rank, win_rate,
)

ROOT = os.path.join(os.path.dirname(__file__), "..")
FULL = os.path.join(ROOT, "benchmarks", "results", "full")


def load(name: str) -> ResultTable:
    with open(os.path.join(FULL, f"{name}.json")) as fh:
        return ResultTable.from_dict(json.load(fh))


def summarize_table4() -> str:
    t = load("table4")
    ranks = mean_rank(t)
    ordered = ordered_by_rank(t)
    firsts = t.first_place_counts()
    lines = ["Average MSE rank across the 9 datasets (1 = best):", "",
             "| model | mean rank | first places |", "|---|---|---|"]
    for m in ordered:
        lines.append(f"| {m} | {ranks[m]:.2f} | {firsts[m]} |")
    lines += ["", f"Top group: **{', '.join(ordered[:3])}**; "
              f"bottom: {', '.join(ordered[-2:])}."]
    return "\n".join(lines)


def summarize_table5() -> str:
    t = load("table5")
    ranks = mean_rank(t)
    ordered = ordered_by_rank(t)
    lines = ["Average MSE rank over the imputation grid:", "",
             "| model | mean rank |", "|---|---|"]
    for m in ordered[:5]:
        lines.append(f"| {m} | {ranks[m]:.2f} |")
    grows, total = monotone_fraction(t, "TS3Net")
    lines += ["", f"TS3Net error grows with the mask ratio on {grows}/{total} "
              "datasets (paper: always)."]
    return "\n".join(lines)


def summarize_table6() -> str:
    t = load("table6")
    deg = degradation_vs(t, reference="TS3Net")
    lines = ["Average-MSE degradation vs. full TS3Net:", "",
             "| dataset | w/o TD | w/o TF-Block | w/o Both |",
             "|---|---|---|---|"]
    for ds, row in deg.items():
        cells = [f"{100 * row[c]:+.1f}%"
                 for c in ("w/o TD", "w/o TF-Block", "w/o Both")]
        lines.append(f"| {ds} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def summarize_table7() -> str:
    t = load("table7")
    wins, total = win_rate(t, "TS3Net")
    lines = ["Average MSE per backbone:", "",
             "| dataset | TSD-CNN | TSD-Trans | TS3Net |", "|---|---|---|---|"]
    for ds in t.datasets:
        avg = t.average_row(ds)
        lines.append(f"| {ds} | {avg['TSD-CNN']['mse']:.3f} | "
                     f"{avg['TSD-Trans']['mse']:.3f} | "
                     f"{avg['TS3Net']['mse']:.3f} |")
    lines += ["", f"TS3Net wins {wins}/{total} comparisons "
              "(paper: 13/15 at full scale)."]
    return "\n".join(lines)


def summarize_table8() -> str:
    t = load("table8")
    deg = degradation_vs(t, reference="rho=0%")
    lines = ["MSE degradation vs. the clean run (rho=0%):", "",
             "| dataset | rho=1% | rho=5% | rho=10% |", "|---|---|---|---|"]
    for ds, row in deg.items():
        cells = [f"{100 * row[c]:+.1f}%" for c in ("rho=1%", "rho=5%", "rho=10%")]
        lines.append(f"| {ds} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def summarize_table9() -> str:
    t = load("table9")
    lines = ["Average MSE per lambda:", "",
             "| dataset | " + " | ".join(t.models) + " |",
             "|" + "---|" * (len(t.models) + 1)]
    for ds in t.datasets:
        avg = t.average_row(ds)
        lines.append("| " + ds + " | " + " | ".join(
            f"{avg[m]['mse']:.3f}" for m in t.models) + " |")
    return "\n".join(lines)


def main() -> None:
    summaries = {
        "TABLE4-SUMMARY": summarize_table4,
        "TABLE5-SUMMARY": summarize_table5,
        "TABLE6-SUMMARY": summarize_table6,
        "TABLE7-SUMMARY": summarize_table7,
        "TABLE8-SUMMARY": summarize_table8,
        "TABLE9-SUMMARY": summarize_table9,
    }
    path = os.path.join(ROOT, "EXPERIMENTS.md")
    with open(path) as fh:
        text = fh.read()
    for marker, fn in summaries.items():
        try:
            block = fn()
        except FileNotFoundError:
            print(f"skipping {marker}: results not found")
            continue
        open_tag, close_tag = f"<!-- {marker} -->", f"<!-- /{marker} -->"
        replacement = f"{open_tag}\n{block}\n{close_tag}"
        if close_tag in text:
            pattern = re.escape(open_tag) + r".*?" + re.escape(close_tag)
            text = re.sub(pattern, lambda _: replacement, text, flags=re.S)
        else:
            text = text.replace(open_tag, replacement)
    with open(path, "w") as fh:
        fh.write(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
