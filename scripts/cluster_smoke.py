#!/usr/bin/env python
"""End-to-end smoke test for the pre-fork serving cluster (CI gate).

Boots a real multi-process cluster (front-end acceptor + N forked
workers sharing copy-on-write weight blobs), then walks the lifecycle
CI cares about:

1. proxied forecasts are bit-identical to un-batched single forwards;
2. the aggregated ``/metrics`` scrape equals a local merge of the
   per-worker side-door scrapes (golden compare) and carries the exact
   request count;
3. hot reload mid-flight publishes a new weight version and every
   subsequent answer comes from it;
4. a crashed worker is respawned (fresh pid) and answers correctly;
5. ``repro top`` renders at least one dashboard frame against the live
   cluster's ``/metrics`` (QPS, latency quantiles, worker liveness, SLO
   error budget);
6. the whole cluster drains cleanly;
7. (with ``--trace``) critical-path attribution over the recorded trace:
   every cluster request's component sum (proxy hop + queue wait + batch
   execute + postprocess) lands within 5% of the front-end span's
   measured duration.

Exits non-zero on the first failed check.  ``--trace PATH`` writes the
run's span/event JSONL (front-end and workers append to the same file)
so CI can upload it as a failure artifact.
"""

import argparse
import http.client
import json
import os
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import numpy as np                                             # noqa: E402

from repro.baselines import build_model                        # noqa: E402
from repro.nn import save_checkpoint                           # noqa: E402
from repro.serving import (                                    # noqa: E402
    ModelRegistry, ServingConfig, single_forward,
)
from repro.serving.cluster import (                            # noqa: E402
    ClusterConfig, build_cluster, merge_expositions,
)
from repro.utils import set_seed                               # noqa: E402

SEQ, PRED, CIN = 32, 8, 3
MODEL = "dlinear"

_failures = []


def check(name: str, ok: bool, detail: str = "") -> None:
    status = "ok  " if ok else "FAIL"
    print(f"  {status} {name}" + (f"  ({detail})" if detail and not ok else ""))
    if not ok:
        _failures.append(name)


def make_ckpt(path: str, seed: int) -> str:
    set_seed(seed)
    model = build_model("DLinear", seq_len=SEQ, pred_len=PRED, c_in=CIN,
                        task="forecast", preset="tiny")
    save_checkpoint(model, path, metadata={
        "model": "DLinear", "dataset": "smoke", "task": "forecast",
        "seq_len": SEQ, "pred_len": PRED, "c_in": CIN, "preset": "tiny"})
    return path


def window(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(SEQ)[:, None]
    return (np.sin(2 * np.pi * t / (4 + seed)) * np.ones((1, CIN))
            + 0.05 * rng.standard_normal((SEQ, CIN))).round(6)


def request(host, port, method, path, payload=None, timeout=30):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    body = json.dumps(payload).encode() if payload is not None else None
    try:
        conn.request(method, path, body,
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
    finally:
        conn.close()
    try:
        parsed = json.loads(data)
    except (ValueError, UnicodeDecodeError):
        parsed = data.decode("utf-8", "replace")
    return resp.status, parsed


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--trace", default=None,
                        help="write span/event JSONL here (CI artifact)")
    args = parser.parse_args(argv)

    if args.trace:
        from repro.obs import runtime as obs_runtime
        obs_runtime.configure(path=args.trace)

    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    ckpt_v1 = make_ckpt(os.path.join(tmp, "v1.npz"), seed=0)
    ckpt_v2 = make_ckpt(os.path.join(tmp, "v2.npz"), seed=9)

    reference = ModelRegistry()
    entry_v1 = reference.load("ref1", ckpt_v1)
    entry_v2 = reference.load("ref2", ckpt_v2)

    serving = ServingConfig(port=0, max_batch_size=4, max_wait_ms=1.0,
                            queue_size=64, default_timeout_ms=10000.0)
    config = ClusterConfig(workers=args.workers, port=0,
                           spool_dir=os.path.join(tmp, "spool"),
                           serving=serving, expect_task="forecast",
                           trace_path=args.trace, slo="default")
    print(f"cluster_smoke: booting {args.workers} worker(s) ...")
    server = build_cluster(config, {MODEL: ckpt_v1})
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    pool = server.pool

    try:
        # 1. bit-identity across the proxy + sharded micro-batchers
        n_posts = 6
        for seed in range(n_posts):
            w = window(seed)
            status, body = request(host, port, "POST", "/v1/forecast",
                                   {"model": MODEL, "window": w.tolist()})
            got = (np.asarray(body["prediction"], dtype=np.float64)
                   if status == 200 else None)
            check(f"forecast[{seed}] bitwise == single_forward",
                  status == 200
                  and repr(got) == repr(single_forward(entry_v1, w)),
                  f"status={status}")

        status, health = request(host, port, "GET", "/healthz")
        check("healthz reports all workers alive",
              status == 200
              and health["alive"] == list(range(args.workers)),
              f"status={status} body={health}")

        # 2. aggregated scrape: golden-compare against a local merge of
        # the per-worker side-door scrapes (quiesced, so byte-equal)
        status, text = request(host, port, "GET", "/metrics")
        check("aggregated /metrics scrape", status == 200, f"status={status}")
        expected = (f'repro_requests_total{{code="200",class="2xx"}} '
                    f'{n_posts}')
        check("aggregate carries exact summed request count",
              expected in text, f"missing {expected!r}")
        worker_texts = []
        for worker_id in pool.alive_ids():
            wstatus, wtext = request(host, pool.endpoint(worker_id),
                                     "GET", "/admin/metrics")
            check(f"worker {worker_id} side-door scrape", wstatus == 200,
                  f"status={wstatus}")
            worker_texts.append(wtext)
        check("aggregate == local merge of worker scrapes (golden)",
              text.endswith(merge_expositions(worker_texts)))

        # 3. hot reload through the front end: version 2 everywhere, no
        # stale answers afterwards
        status, body = request(host, port, "POST", "/admin/reload",
                               {"name": MODEL, "checkpoint": ckpt_v2})
        check("admin reload accepted",
              status == 200 and body.get("version") == 2,
              f"status={status} body={body}")
        status, body = request(host, port, "GET", "/v1/models")
        versions = {m["name"]: m["version"] for m in body.get("models", [])}
        check("models proxy reports new version",
              status == 200 and versions.get(MODEL) == 2,
              f"versions={versions}")
        for seed in range(args.workers * 2):
            w = window(seed)
            status, body = request(host, port, "POST", "/v1/forecast",
                                   {"model": MODEL, "window": w.tolist()})
            got = (np.asarray(body["prediction"], dtype=np.float64)
                   if status == 200 else None)
            check(f"post-reload forecast[{seed}] uses new weights",
                  status == 200
                  and repr(got) == repr(single_forward(entry_v2, w)),
                  f"status={status}")

        # 4. crash one worker; the supervisor must respawn it (new pid)
        # and the replacement must attach the CURRENT weight version
        victim = pool.alive_ids()[0]
        old_pid = pool.handles[victim].pid
        try:
            request(host, pool.endpoint(victim), "POST", "/admin/crash",
                    {}, timeout=5)
        except (OSError, http.client.HTTPException):
            pass                           # worker died mid-response
        respawned = wait_for(
            lambda: (pool.handles[victim].pid not in (None, old_pid)
                     and victim in pool.alive_ids()))
        check("crashed worker respawned with fresh pid", respawned,
              f"old_pid={old_pid}")
        w = window(13)
        deadline = time.monotonic() + 10
        status, body = None, None
        while time.monotonic() < deadline:
            status, body = request(host, port, "POST", "/v1/forecast",
                                   {"model": MODEL, "window": w.tolist()})
            if status == 200:
                break
            time.sleep(0.1)
        got = (np.asarray(body["prediction"], dtype=np.float64)
               if status == 200 else None)
        check("post-respawn forecast correct on current version",
              status == 200
              and repr(got) == repr(single_forward(entry_v2, w)),
              f"status={status}")
        status, text = request(host, port, "GET", "/metrics")
        check("restart counted in cluster metrics",
              status == 200 and "repro_cluster_worker_restarts_total" in text
              and f'worker="{victim}"' in text)

        # 5. live dashboard: `repro top` must render at least one frame
        # against the running cluster, showing traffic and the SLO budget
        import io

        from repro.obs import top as obs_top
        buf = io.StringIO()
        frames = obs_top.run_top(f"http://{host}:{port}/metrics",
                                 interval_s=0.2, iterations=2,
                                 stream=buf, clear=False)
        frame_text = buf.getvalue()
        check("repro top renders against the live cluster",
              frames >= 1 and "requests" in frame_text
              and "workers alive" in frame_text,
              f"frames={frames} text={frame_text[:200]!r}")
        check("repro top shows the SLO error budget",
              "slo budget" in frame_text, frame_text[:200])
    finally:
        # 6. clean drain: stop accepting, finish in-flight, reap workers
        server.shutdown()
        thread.join(timeout=10)
        t0 = time.monotonic()
        server.drain()
        drain_s = time.monotonic() - t0
        check("cluster drained cleanly",
              drain_s < config.drain_timeout_s
              and all(not h.alive for h in pool.handles.values()),
              f"drain took {drain_s:.1f}s")
        if args.trace:
            from repro.obs import runtime as obs_runtime
            obs_runtime.shutdown()

    if args.trace:
        # 7. critical-path attribution over the recorded trace: every
        # cluster request's component sum must land within 5% of the
        # front-end span's measured wall-clock.
        from repro.obs import analysis as obs_analysis
        from repro.obs import store as obs_store
        records = obs_store.load_records(args.trace)
        rows = [r for r in obs_analysis.request_attributions(records)
                if r["tier"] == "cluster"]
        check("trace carries attributable cluster requests",
              len(rows) >= n_posts, f"got {len(rows)}")
        bad = [r for r in rows if not 0.95 <= r["coverage"] <= 1.05]
        check("attribution sums within 5% of frontend span duration",
              bool(rows) and not bad,
              f"{len(bad)}/{len(rows)} outside, e.g. "
              + (f"{bad[0]['coverage']:.3f}" if bad else ""))

    if _failures:
        print(f"cluster_smoke: FAIL ({len(_failures)} check(s)): "
              + ", ".join(_failures))
        return 1
    print("cluster_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
