"""Headline experiment sweep for EXPERIMENTS.md (reduced grid, small scale).

One horizon per dataset and two mask ratios keep the wall-clock tractable
on a single CPU while preserving each table's comparison structure. The
complete grids remain available via the per-table CLIs
(``python -m repro.experiments.table4 --scale small``) and
``scripts/run_all_experiments.py``.
"""

import os
import time

from repro.experiments import (
    figures, table2, table4, table5, table6, table7, table8, table9,
)
from repro.experiments.configs import format_table3

OUT = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "results", "full")
SCALE = "small"


def emit(name, table=None, text=None):
    if table is not None:
        table.save_json(os.path.join(OUT, f"{name}.json"))
        text = table.render()
    with open(os.path.join(OUT, f"{name}.txt"), "w") as fh:
        fh.write(text)
    print(f"\n===== {name} =====\n{text}\n", flush=True)


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    t0 = time.time()

    emit("table2", text=table2.describe(SCALE))
    emit("table3", text=format_table3())
    emit("table4", table4.run(scale=SCALE, pred_lens=[24], verbose=True))
    emit("table5", table5.run(scale=SCALE, mask_ratios=[0.25, 0.5], verbose=True))
    emit("table6", table6.run(scale=SCALE, pred_lens=[24], verbose=True))
    emit("table7", table7.run(scale=SCALE, pred_lens=[24], verbose=True))
    emit("table8", table8.run(scale=SCALE, pred_lens=[24], verbose=True))
    emit("table9", table9.run(scale=SCALE, pred_lens=[24], verbose=True))
    emit("fig3", text=figures.figure3(
        scale=SCALE, csv_path=os.path.join(OUT, "fig3.csv")).render())
    emit("fig4", text=figures.figure4(
        scale=SCALE, csv_path=os.path.join(OUT, "fig4.csv")).render())
    for ds in ("ETTh1", "ETTh2"):
        emit(f"fig5_{ds}", text=figures.figure5(
            dataset=ds, scale=SCALE,
            csv_path=os.path.join(OUT, f"fig5_{ds}.csv")).render())

    print(f"\nall done in {time.time() - t0:.0f}s", flush=True)


if __name__ == "__main__":
    main()
