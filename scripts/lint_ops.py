#!/usr/bin/env python
"""Static guards for ``src/repro``: tape construction and console output.

1. The op registry is the single door into the autodiff tape.  Greps
   ``src/repro`` for hand-rolled tape construction outside ``autodiff/``
   — anonymous ``_backward`` closures, direct ``_parents``/``_node``
   wiring, ``OpNode(...)`` instantiation, the retired ``Tensor._make``,
   or mutation of the ``registered_ops()`` view — so new code cannot
   bypass ``apply()``/``@register_op`` (and with it the gradient-check
   sweep, the hooks, the freeing policy, and the graph compiler, which
   all assume the registry describes every op on the tape).

2. Library code must not ``print()``.  Progress and diagnostics route
   through the event sink (``repro.obs``) so they land in the JSONL run
   trace and the console formatter together; bare prints are allowed only
   in CLI entry points (``cli.py``, the experiment-module ``main()``
   files) and the console formatter itself (``obs/console.py``).  The
   check is AST-based: ``print(`` inside docstrings or comments does not
   trip it.

Run directly (exit 1 on violations) or via ``tests/test_op_registry.py``
and ``tests/test_obs.py``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

# Each pattern marks tape internals that only autodiff/ may touch.
FORBIDDEN = [
    (re.compile(r"\._backward\b"), "anonymous _backward closure wiring"),
    (re.compile(r"\b_backward\s*="), "anonymous _backward closure wiring"),
    (re.compile(r"\._parents\b"), "direct _parents access"),
    (re.compile(r"\._node\b"), "direct _node access"),
    (re.compile(r"\bTensor\._make\b"), "retired Tensor._make constructor"),
    (re.compile(r"\bOpNode\("), "direct OpNode construction"),
    (re.compile(r"registered_ops\(\)\s*(\[[^\]]*\]\s*=[^=]"
                r"|\.\s*(pop|popitem|update|clear|setdefault)\b)"),
     "registered_ops() mutation (use @register_op)"),
    (re.compile(r"\bdel\s+registered_ops\(\)"),
     "registered_ops() mutation (use @register_op)"),
]


def find_violations(src: Path = SRC) -> List[Tuple[str, int, str, str]]:
    """Return ``(path, line_no, reason, line)`` for every offending line."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT)
        if "autodiff" in rel.parts:
            continue
        for line_no, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            for pattern, reason in FORBIDDEN:
                if pattern.search(stripped):
                    violations.append((str(rel), line_no, reason, line.strip()))
    return violations


# Files whose job is terminal output: the top-level CLI, the experiment
# modules' main() entry points, and the obs console formatter (the one
# sanctioned place library records become stderr lines).
PRINT_ALLOWLIST = frozenset({
    "src/repro/cli.py",
    "src/repro/obs/console.py",
    "src/repro/experiments/figures.py",
    "src/repro/experiments/sensitivity.py",
    "src/repro/experiments/table2.py",
    "src/repro/experiments/table4.py",
    "src/repro/experiments/table5.py",
    "src/repro/experiments/table6.py",
    "src/repro/experiments/table7.py",
    "src/repro/experiments/table8.py",
    "src/repro/experiments/table9.py",
})


def find_print_violations(src: Path = SRC) -> List[Tuple[str, int, str, str]]:
    """Return ``(path, line_no, reason, line)`` for bare print() calls."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT)
        if str(rel) in PRINT_ALLOWLIST:
            continue
        text = path.read_text()
        lines = text.splitlines()
        for node in ast.walk(ast.parse(text, filename=str(rel))):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                line = lines[node.lineno - 1].strip()
                violations.append((str(rel), node.lineno,
                                   "bare print() in library code", line))
    return violations


def main() -> int:
    violations = find_violations() + find_print_violations()
    for path, line_no, reason, line in violations:
        print(f"{path}:{line_no}: {reason}: {line}")
    if violations:
        print(f"{len(violations)} violation(s): route new differentiable ops "
              "through @register_op + apply() (see src/repro/autodiff/graph.py)"
              " and console output through the event sink (see "
              "src/repro/obs/console.py)")
        return 1
    print("lint_ops: clean — no tape construction outside autodiff/, no "
          "bare print() in library code")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
