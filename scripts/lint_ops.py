#!/usr/bin/env python
"""Static guards for ``src/repro``: tape construction and console output.

1. The op registry is the single door into the autodiff tape.  Greps
   ``src/repro`` for hand-rolled tape construction outside ``autodiff/``
   — anonymous ``_backward`` closures, direct ``_parents``/``_node``
   wiring, ``OpNode(...)`` instantiation, the retired ``Tensor._make``,
   or mutation of the ``registered_ops()`` view — so new code cannot
   bypass ``apply()``/``@register_op`` (and with it the gradient-check
   sweep, the hooks, the freeing policy, and the graph compiler, which
   all assume the registry describes every op on the tape).

2. Library code must not ``print()``.  Progress and diagnostics route
   through the event sink (``repro.obs``) so they land in the JSONL run
   trace and the console formatter together; bare prints are allowed only
   in CLI entry points (``cli.py``, the experiment-module ``main()``
   files) and the console formatter itself (``obs/console.py``).  The
   check is AST-based: ``print(`` inside docstrings or comments does not
   trip it.

3. Every registered :class:`~repro.tasks.registry.TaskSpec` must be
   complete: loader factory, step function, non-empty metric bundle,
   model construction/rebuild, a full serving contract (singular/plural
   keys, batch policy, postprocess, body_extra), and a unique CLI
   inference subcommand.  A half-declared task would otherwise only fail
   at runtime deep inside the trainer, the HTTP server, or argparse.

Run directly (exit 1 on violations) or via ``tests/test_op_registry.py``,
``tests/test_obs.py``, and ``tests/test_task_registry.py``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

# Each pattern marks tape internals that only autodiff/ may touch.
FORBIDDEN = [
    (re.compile(r"\._backward\b"), "anonymous _backward closure wiring"),
    (re.compile(r"\b_backward\s*="), "anonymous _backward closure wiring"),
    (re.compile(r"\._parents\b"), "direct _parents access"),
    (re.compile(r"\._node\b"), "direct _node access"),
    (re.compile(r"\bTensor\._make\b"), "retired Tensor._make constructor"),
    (re.compile(r"\bOpNode\("), "direct OpNode construction"),
    (re.compile(r"registered_ops\(\)\s*(\[[^\]]*\]\s*=[^=]"
                r"|\.\s*(pop|popitem|update|clear|setdefault)\b)"),
     "registered_ops() mutation (use @register_op)"),
    (re.compile(r"\bdel\s+registered_ops\(\)"),
     "registered_ops() mutation (use @register_op)"),
]


def find_violations(src: Path = SRC) -> List[Tuple[str, int, str, str]]:
    """Return ``(path, line_no, reason, line)`` for every offending line."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT)
        if "autodiff" in rel.parts:
            continue
        for line_no, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            for pattern, reason in FORBIDDEN:
                if pattern.search(stripped):
                    violations.append((str(rel), line_no, reason, line.strip()))
    return violations


# Files whose job is terminal output: the top-level CLI, the experiment
# modules' main() entry points, and the obs console formatter (the one
# sanctioned place library records become stderr lines).
PRINT_ALLOWLIST = frozenset({
    "src/repro/cli.py",
    "src/repro/obs/console.py",
    "src/repro/experiments/figures.py",
    "src/repro/experiments/sensitivity.py",
    "src/repro/experiments/table2.py",
    "src/repro/experiments/table4.py",
    "src/repro/experiments/table5.py",
    "src/repro/experiments/table6.py",
    "src/repro/experiments/table7.py",
    "src/repro/experiments/table8.py",
    "src/repro/experiments/table9.py",
})


def find_print_violations(src: Path = SRC) -> List[Tuple[str, int, str, str]]:
    """Return ``(path, line_no, reason, line)`` for bare print() calls."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT)
        if str(rel) in PRINT_ALLOWLIST:
            continue
        text = path.read_text()
        lines = text.splitlines()
        for node in ast.walk(ast.parse(text, filename=str(rel))):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                line = lines[node.lineno - 1].strip()
                violations.append((str(rel), node.lineno,
                                   "bare print() in library code", line))
    return violations


# Spec callables every task must supply; None or a non-callable fails.
_SPEC_CALLABLES = (
    "make_config", "channels", "loaders", "step", "evaluate", "build",
    "rebuild", "out_len", "checkpoint_extra", "add_infer_args", "run_infer",
    "format_result",
)
_CONTRACT_CALLABLES = ("batch_policy", "postprocess", "body_extra")


def find_task_violations() -> List[Tuple[str, int, str, str]]:
    """Registry-completeness check: every TaskSpec fully declared.

    Imports the live registry (CI runs this script without
    ``PYTHONPATH=src``, so the path is bootstrapped here) and verifies
    each spec carries every callable, a metric bundle, a serving
    contract, and a unique inference subcommand.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.tasks import registry
    finally:
        sys.path.pop(0)
    rel = "src/repro/tasks/registry.py"
    violations = []

    def flag(spec_name: str, problem: str) -> None:
        violations.append((rel, 0, "incomplete TaskSpec",
                           f"task {spec_name!r}: {problem}"))

    seen_commands = {}
    for spec in registry.task_specs():
        for attr in _SPEC_CALLABLES:
            if not callable(getattr(spec, attr)):
                flag(spec.name, f"{attr} is not callable")
        if spec.needs_split == (spec.load_data is not None):
            flag(spec.name, "load_data must be set iff needs_split is False")
        if not spec.metric_names:
            flag(spec.name, "metric_names is empty")
        if not spec.summary:
            flag(spec.name, "summary is empty")
        if not spec.setting_name or not spec.setting_arg:
            flag(spec.name, "setting_name/setting_arg missing")
        contract = spec.serving
        if contract is None:
            flag(spec.name, "serving contract missing")
        else:
            if not contract.singular or not contract.plural:
                flag(spec.name, "serving singular/plural keys missing")
            for attr in _CONTRACT_CALLABLES:
                if not callable(getattr(contract, attr)):
                    flag(spec.name, f"serving {attr} is not callable")
        if not spec.infer_command:
            flag(spec.name, "infer_command is empty")
        elif spec.infer_command in seen_commands:
            flag(spec.name, f"infer_command {spec.infer_command!r} collides "
                            f"with task {seen_commands[spec.infer_command]!r}")
        else:
            seen_commands[spec.infer_command] = spec.name
    return violations


def main() -> int:
    violations = (find_violations() + find_print_violations()
                  + find_task_violations())
    for path, line_no, reason, line in violations:
        print(f"{path}:{line_no}: {reason}: {line}")
    if violations:
        print(f"{len(violations)} violation(s): route new differentiable ops "
              "through @register_op + apply() (see src/repro/autodiff/graph.py)"
              " and console output through the event sink (see "
              "src/repro/obs/console.py)")
        return 1
    print("lint_ops: clean — no tape construction outside autodiff/, no "
          "bare print() in library code, all TaskSpecs complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
