#!/usr/bin/env python
"""Static guard: the op registry is the single door into the autodiff tape.

Greps ``src/repro`` for hand-rolled tape construction outside ``autodiff/``
— anonymous ``_backward`` closures, direct ``_parents``/``_node`` wiring,
``OpNode(...)`` instantiation, or the retired ``Tensor._make`` — so new code
cannot bypass ``apply()``/``@register_op`` (and with it the gradient-check
sweep, the hooks, and the freeing policy).

Run directly (exit 1 on violations) or via ``tests/test_op_registry.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

# Each pattern marks tape internals that only autodiff/ may touch.
FORBIDDEN = [
    (re.compile(r"\._backward\b"), "anonymous _backward closure wiring"),
    (re.compile(r"\b_backward\s*="), "anonymous _backward closure wiring"),
    (re.compile(r"\._parents\b"), "direct _parents access"),
    (re.compile(r"\._node\b"), "direct _node access"),
    (re.compile(r"\bTensor\._make\b"), "retired Tensor._make constructor"),
    (re.compile(r"\bOpNode\("), "direct OpNode construction"),
]


def find_violations(src: Path = SRC) -> List[Tuple[str, int, str, str]]:
    """Return ``(path, line_no, reason, line)`` for every offending line."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT)
        if "autodiff" in rel.parts:
            continue
        for line_no, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            for pattern, reason in FORBIDDEN:
                if pattern.search(stripped):
                    violations.append((str(rel), line_no, reason, line.strip()))
    return violations


def main() -> int:
    violations = find_violations()
    for path, line_no, reason, line in violations:
        print(f"{path}:{line_no}: {reason}: {line}")
    if violations:
        print(f"{len(violations)} violation(s): route new differentiable ops "
              "through @register_op + apply() (see src/repro/autodiff/graph.py)")
        return 1
    print("lint_ops: clean — no tape construction outside autodiff/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
